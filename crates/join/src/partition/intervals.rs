//! Choosing partitioning intervals (algorithm `chooseIntervals`, Figure 11).
//!
//! The paper's pseudocode materializes the multiset of **every chronon
//! covered by every sampled tuple**, sorts it, and picks the chronons at
//! every equal-depth position as partition boundaries. Weighting each
//! chronon by how many sampled tuples cover it is what makes the resulting
//! partitions equal in *expected tuple presence* (stored + migrated), not
//! merely in stored tuples — long-lived tuples count in every partition
//! they will visit.
//!
//! Materializing the multiset is `O(Σ duration)` — hopeless for long-lived
//! tuples — so this implementation computes the identical quantiles with
//! an endpoint sweep over `(chronon, ±1)` events in `O(m log m)`:
//! the multiset's cumulative mass is piecewise linear between event
//! positions, so each equal-depth boundary lands inside one segment and is
//! recovered by integer division. See DESIGN.md for the note on the
//! published pseudocode's index arithmetic.
//!
//! The returned intervals are extended to cover the whole time-line
//! (`[-∞ … ∞]`): a tuple outside the sampled range must still land in some
//! partition or the join would silently drop it.

use vtjoin_core::{Chronon, Interval};

/// Sorted endpoint events of a sample set, reusable across candidate
/// partition counts (the planner sweeps many candidates over one pool).
#[derive(Debug, Clone)]
pub struct SweepEvents {
    /// `(position, delta)` with positions strictly increasing; `delta` is
    /// the net change in the number of covering tuples at that position.
    events: Vec<(i128, i64)>,
    /// Total covered-chronon mass `Σ duration`.
    total_mass: u128,
}

impl SweepEvents {
    /// Builds the event list for a set of sampled intervals.
    pub fn build(samples: &[Interval]) -> SweepEvents {
        let mut raw: Vec<(i128, i64)> = Vec::with_capacity(samples.len() * 2);
        let mut total_mass: u128 = 0;
        for iv in samples {
            let s = i128::from(iv.start().value());
            let e = i128::from(iv.end().value());
            raw.push((s, 1));
            raw.push((e + 1, -1));
            total_mass += iv.duration();
        }
        raw.sort_unstable_by_key(|&(p, _)| p);
        // Coalesce equal positions.
        let mut events: Vec<(i128, i64)> = Vec::with_capacity(raw.len());
        for (p, d) in raw {
            match events.last_mut() {
                Some((lp, ld)) if *lp == p => *ld += d,
                _ => events.push((p, d)),
            }
        }
        SweepEvents { events, total_mass }
    }

    /// Total covered-chronon mass.
    pub fn total_mass(&self) -> u128 {
        self.total_mass
    }
}

/// Chooses `num_partitions` partitioning intervals from sampled tuples —
/// the executable form of Figure 11. Fewer intervals may be returned when
/// the sample cannot support that many distinct boundaries (e.g. all
/// samples cover one chronon).
pub fn choose_intervals(samples: &[Interval], num_partitions: u64) -> Vec<Interval> {
    choose_from_events(&SweepEvents::build(samples), num_partitions)
}

/// [`choose_intervals`] over prebuilt events.
pub fn choose_from_events(ev: &SweepEvents, num_partitions: u64) -> Vec<Interval> {
    if num_partitions <= 1 || ev.total_mass == 0 {
        return vec![Interval::ALL];
    }
    let n = num_partitions as u128;
    // Boundary chronons where cumulative mass first reaches k·W/n.
    let mut boundaries: Vec<i128> = Vec::with_capacity(num_partitions as usize - 1);
    let mut cum: u128 = 0;
    let mut active: i64 = 0;
    let mut k: u128 = 1;
    for w in ev.events.windows(2) {
        let (p, d) = w[0];
        let next_p = w[1].0;
        active += d;
        if active <= 0 {
            continue;
        }
        let seg_len = (next_p - p) as u128;
        let seg_mass = seg_len * active as u128;
        while k < n {
            let target = ev.total_mass * k / n;
            if target == 0 {
                k += 1;
                continue;
            }
            if cum + seg_mass < target {
                break;
            }
            // Smallest t ≥ 1 chronons into the segment reaching the target.
            let need = target - cum;
            let t = need.div_ceil(active as u128);
            boundaries.push(p + t as i128 - 1);
            k += 1;
        }
        cum += seg_mass;
        if k >= n {
            break;
        }
    }
    // Deduplicate and drop any boundary at the end of time (it would make
    // the following partition empty of representable chronons).
    boundaries.dedup();
    boundaries.retain(|&b| b < i128::from(Chronon::MAX.value()));

    let mut out = Vec::with_capacity(boundaries.len() + 1);
    let mut start = Chronon::MIN;
    for b in boundaries {
        let end = Chronon::new(b as i64);
        if end < start {
            continue;
        }
        out.push(Interval::new(start, end).expect("ordered boundary"));
        start = end.succ();
    }
    out.push(Interval::new(start, Chronon::MAX).expect("tail partition"));
    debug_assert!(is_partitioning(&out));
    out
}

/// `num_partitions` equal-width intervals over `lifespan`, extended to
/// cover all of time. A sampling-free alternative used by tests and as a
/// fallback when no samples are available.
pub fn equal_width(lifespan: Interval, num_partitions: u64) -> Vec<Interval> {
    if num_partitions <= 1 {
        return vec![Interval::ALL];
    }
    let n = num_partitions as i128;
    let lo = i128::from(lifespan.start().value());
    let hi = i128::from(lifespan.end().value());
    let span = hi - lo + 1;
    let mut out = Vec::with_capacity(num_partitions as usize);
    let mut start = Chronon::MIN;
    for k in 1..n {
        let b = lo + span * k / n - 1;
        let end = Chronon::new(b as i64);
        if end < start {
            continue;
        }
        out.push(Interval::new(start, end).expect("ordered"));
        start = end.succ();
    }
    out.push(Interval::new(start, Chronon::MAX).expect("tail"));
    out
}

/// Whether `ivs` is a partitioning of valid time: non-empty, ascending,
/// adjacent (no gaps, no overlaps), starting at `-∞` and ending at `∞` —
/// the precondition of §3.3.
pub fn is_partitioning(ivs: &[Interval]) -> bool {
    if ivs.is_empty() {
        return false;
    }
    if ivs[0].start() != Chronon::MIN || ivs[ivs.len() - 1].end() != Chronon::MAX {
        return false;
    }
    ivs.windows(2)
        .all(|w| w[0].end() != Chronon::MAX && w[0].end().succ() == w[1].start())
}

/// Index of the partition whose interval contains chronon `c`.
/// Precondition: `ivs` satisfies [`is_partitioning`].
pub fn partition_of(ivs: &[Interval], c: Chronon) -> usize {
    debug_assert!(!ivs.is_empty());
    // Last interval whose start is ≤ c.
    ivs.partition_point(|iv| iv.start() <= c) - 1
}

/// The contiguous range of partitions a tuple with validity `valid` is
/// **replicated into** under the Leung–Muntz rule: every partition it
/// overlaps, i.e. from the partition containing its start chronon through
/// the partition containing its end chronon. Shared by the disk-backed
/// replicated variant and the in-memory parallel executor so the
/// replication rule cannot drift between them.
/// Precondition: `ivs` satisfies [`is_partitioning`].
pub fn replica_range(ivs: &[Interval], valid: Interval) -> std::ops::RangeInclusive<usize> {
    partition_of(ivs, valid.start())..=partition_of(ivs, valid.end())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::from_raw(s, e).unwrap()
    }

    /// Brute-force reference: materialize the covered-chronon multiset as
    /// Figure 11 does and extract equal-depth boundaries.
    fn brute_choose(samples: &[Interval], n: u64) -> Vec<Interval> {
        let mut chronons: Vec<i64> = Vec::new();
        for s in samples {
            for c in s.chronons() {
                chronons.push(c.value());
            }
        }
        if n <= 1 || chronons.is_empty() {
            return vec![Interval::ALL];
        }
        chronons.sort_unstable();
        let w = chronons.len() as u128;
        let mut bounds = Vec::new();
        for k in 1..n as u128 {
            let target = (w * k / n as u128) as usize;
            if target == 0 {
                continue;
            }
            bounds.push(chronons[target - 1]); // mass ≥ target first reached here
        }
        bounds.dedup();
        let mut out = Vec::new();
        let mut start = Chronon::MIN;
        for b in bounds {
            let end = Chronon::new(b);
            if end < start {
                continue;
            }
            out.push(Interval::new(start, end).unwrap());
            start = end.succ();
        }
        out.push(Interval::new(start, Chronon::MAX).unwrap());
        out
    }

    #[test]
    fn sweep_matches_brute_force() {
        let cases: Vec<(Vec<Interval>, u64)> = vec![
            (vec![iv(0, 9)], 2),
            (vec![iv(0, 9)], 5),
            (vec![iv(0, 0), iv(1, 1), iv(2, 2), iv(3, 3)], 2),
            (vec![iv(0, 3), iv(2, 9), iv(5, 5)], 3),
            (vec![iv(10, 20), iv(0, 100), iv(40, 45), iv(90, 95)], 4),
            (vec![iv(5, 5); 10], 3),
            (vec![iv(0, 1), iv(100, 101)], 2),
        ];
        for (samples, n) in cases {
            let fast = choose_intervals(&samples, n);
            let brute = brute_choose(&samples, n);
            assert_eq!(fast, brute, "samples {samples:?} n={n}");
        }
    }

    #[test]
    fn equal_depth_on_uniform_chronon_tuples() {
        // 100 one-chronon tuples at 0..100 with 4 partitions: boundaries at
        // the 25th/50th/75th covered chronons.
        let samples: Vec<Interval> = (0..100).map(|i| iv(i, i)).collect();
        let parts = choose_intervals(&samples, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].end().value(), 24);
        assert_eq!(parts[1].end().value(), 49);
        assert_eq!(parts[2].end().value(), 74);
        assert!(is_partitioning(&parts));
    }

    #[test]
    fn long_lived_tuples_shift_boundaries() {
        // Mass concentrated early by a long-lived tuple: the first
        // partition must shrink relative to the uniform case.
        let uniform: Vec<Interval> = (0..100).map(|i| iv(i, i)).collect();
        let mut skewed = uniform.clone();
        for _ in 0..50 {
            skewed.push(iv(0, 19)); // heavy mass on [0,20)
        }
        let u = choose_intervals(&uniform, 2);
        let s = choose_intervals(&skewed, 2);
        assert!(
            s[0].end() < u[0].end(),
            "skewed boundary {} !< uniform {}",
            s[0].end(),
            u[0].end()
        );
    }

    #[test]
    fn covers_all_time_and_is_disjoint() {
        let samples = vec![iv(100, 200), iv(150, 400), iv(380, 380)];
        for n in [1u64, 2, 3, 7, 50] {
            let parts = choose_intervals(&samples, n);
            assert!(is_partitioning(&parts), "n = {n}: {parts:?}");
            assert!(parts.len() as u64 <= n.max(1));
        }
    }

    #[test]
    fn degenerate_samples_collapse_partitions() {
        // All mass on one chronon: only one distinct boundary possible.
        let samples = vec![iv(5, 5); 20];
        let parts = choose_intervals(&samples, 4);
        assert!(is_partitioning(&parts));
        assert!(parts.len() <= 2, "{parts:?}");
    }

    #[test]
    fn empty_samples_yield_single_partition() {
        assert_eq!(choose_intervals(&[], 8), vec![Interval::ALL]);
        assert_eq!(choose_intervals(&[iv(0, 5)], 1), vec![Interval::ALL]);
    }

    #[test]
    fn equal_width_splits_lifespan() {
        let parts = equal_width(iv(0, 99), 4);
        assert!(is_partitioning(&parts));
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].end().value(), 24);
        assert_eq!(parts[2].end().value(), 74);
        assert_eq!(equal_width(iv(0, 99), 1), vec![Interval::ALL]);
    }

    #[test]
    fn partition_of_locates_chronons() {
        let parts = equal_width(iv(0, 99), 4);
        assert_eq!(partition_of(&parts, Chronon::new(0)), 0);
        assert_eq!(partition_of(&parts, Chronon::new(24)), 0);
        assert_eq!(partition_of(&parts, Chronon::new(25)), 1);
        assert_eq!(partition_of(&parts, Chronon::new(99)), 3);
        assert_eq!(partition_of(&parts, Chronon::MIN), 0);
        assert_eq!(partition_of(&parts, Chronon::MAX), 3);
        assert_eq!(partition_of(&parts, Chronon::new(-50)), 0);
        assert_eq!(partition_of(&parts, Chronon::new(1000)), 3);
    }

    #[test]
    fn is_partitioning_detects_violations() {
        assert!(is_partitioning(&[Interval::ALL]));
        assert!(!is_partitioning(&[]));
        assert!(!is_partitioning(&[iv(0, 5)])); // doesn't reach ±∞
        let with_gap = vec![
            Interval::new(Chronon::MIN, Chronon::new(5)).unwrap(),
            Interval::new(Chronon::new(7), Chronon::MAX).unwrap(),
        ];
        assert!(!is_partitioning(&with_gap));
        let with_overlap = vec![
            Interval::new(Chronon::MIN, Chronon::new(5)).unwrap(),
            Interval::new(Chronon::new(5), Chronon::MAX).unwrap(),
        ];
        assert!(!is_partitioning(&with_overlap));
    }

    #[test]
    fn sweep_events_total_mass() {
        let ev = SweepEvents::build(&[iv(0, 9), iv(5, 14)]);
        assert_eq!(ev.total_mass(), 20);
        assert_eq!(SweepEvents::build(&[]).total_mass(), 0);
    }
}
