//! The valid-time partition join (paper §3) and its ablation variant.
//!
//! Evaluation has three phases, mirroring `partitionJoin` in Figure 2:
//!
//! 1. [`planner::determine_part_intervals`] — chooses the partitioning
//!    intervals by sampling the outer relation and minimizing
//!    `C_sample + C_join` over candidate partition sizes (Figure 10).
//! 2. [`grace::do_partitioning`] — Grace-partitions both relations over
//!    those intervals, storing each tuple in its **last** overlapping
//!    partition (§3.3).
//! 3. [`exec::join_partitions`] — joins corresponding partitions from the
//!    last to the first, retaining long-lived outer tuples in memory and
//!    migrating long-lived inner tuples through the paged tuple cache
//!    (Figure 9).
//!
//! [`ReplicatedPartitionJoin`] implements the Leung–Muntz alternative the
//! paper rejects — tuples physically copied into every overlapping
//! partition — so the two strategies can be compared directly.

pub mod cache_est;
pub mod exec;
pub mod grace;
pub mod grid;
pub mod intervals;
pub mod planner;
pub mod replicated;
pub mod sampling;

pub use grid::{plan_grid, GridCandidate, GridChoice, GridPlan, GridPlanOutput};
pub use planner::{plan_error_size, CandidateCost, PartitionPlan, PlannerOutput};
pub use replicated::ReplicatedPartitionJoin;

pub(crate) use exec::chunk_by_pages as exec_chunks;

use crate::columnar::{encode_pair, ColumnarCounters, IdBatch, Layout};
use crate::common::{
    BlockTable, JoinAlgorithm, JoinConfig, JoinError, JoinReport, JoinSpec, PhaseTracker, Result,
    ResultSink,
};
use crate::kernel::{columnar_hash_join, columnar_hash_join_pred, ColumnarScratch};
use std::sync::Arc;
use vtjoin_core::{Interval, Tuple};
use vtjoin_storage::HeapFile;

/// The paper's partition-based valid-time natural join.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionJoin {
    /// §5 future-work extension: when set, the tuple-cache sizes are
    /// estimated from a sample of the *inner* relation instead of reusing
    /// the outer sample (the paper assumes similar distributions; this
    /// flag removes that assumption at the cost of a second sampling pass).
    pub sample_inner_for_cache: bool,
    /// §5 future-work extension: reserve this many buffer pages to hold the
    /// head of the tuple cache in memory, trading outer-partition space for
    /// reduced cache paging.
    pub reserved_cache_pages: u64,
}

impl PartitionJoin {
    /// Minimum buffer: outer area ≥ 1, inner page, cache page, result page
    /// (Figure 3).
    pub const MIN_BUFFER_PAGES: u64 = 4;

    /// Plans, partitions, and joins, returning both the report and the full
    /// planner output (used by the Figure 4 harness).
    pub fn execute_with_plan(
        &self,
        outer: &HeapFile,
        inner: &HeapFile,
        cfg: &JoinConfig,
    ) -> Result<(JoinReport, PlannerOutput)> {
        if cfg.buffer_pages < Self::MIN_BUFFER_PAGES {
            return Err(JoinError::InsufficientMemory {
                algorithm: "partition",
                needed: Self::MIN_BUFFER_PAGES,
                available: cfg.buffer_pages,
            });
        }
        if !cfg.predicate.partitioning_eligible() {
            return Err(JoinError::Precondition(
                "partition join serves only intersection-template predicates (every match \
                 must intersect in time); evaluate sequence/mixed predicates with \
                 nested-loop or the parallel executor's merge fallback",
            ));
        }
        cfg.require_inner()?;
        let spec = JoinSpec::natural(outer.schema(), inner.schema())?;
        let disk = outer.disk().clone();
        let mut tracker = PhaseTracker::start(&disk);
        let mut sink = ResultSink::new(
            Arc::clone(spec.out_schema()),
            disk.page_size(),
            cfg.collect_result,
        );

        // Degenerate case: the outer relation fits in the outer buffer area
        // outright — one partition covering all of time, no sampling and no
        // physical partitioning (§3.1's ideal case).
        let outer_area = cfg.buffer_pages - 3;
        if outer.pages() <= outer_area {
            let block = read_whole(outer)?;
            tracker.phase("plan");
            tracker.phase("partition");
            let (mut filter_checks, mut filter_hits) = (0u64, 0u64);
            let mut cpu = crate::common::CpuCounters::default();
            let mut columnar: Option<ColumnarCounters> = None;
            if cfg.layout == Layout::Columnar {
                // Columnar degenerate path: buffer the inner pages (the
                // same charged reads), encode both sides once, join over
                // the id columns, and late-materialize straight into the
                // sink. `Interval::ALL` as the emit window reproduces the
                // row path's unconditional emission.
                let mut inner_buf: Vec<Tuple> = Vec::new();
                for p in 0..inner.pages() {
                    inner_buf.extend(inner.read_page(p)?);
                }
                let enc = encode_pair(&spec, block.iter(), inner_buf.iter());
                let r_rows: Vec<u32> = (0..enc.outer.len() as u32).collect();
                let s_rows: Vec<u32> = (0..enc.inner.len() as u32).collect();
                let mut scratch = ColumnarScratch::default();
                let mut id_batch = IdBatch::new();
                id_batch.begin(r_rows.len().max(16));
                let hs = if cfg.predicate.is_natural() {
                    columnar_hash_join(
                        &enc.outer,
                        &r_rows,
                        &enc.inner,
                        &s_rows,
                        Interval::ALL,
                        &mut scratch,
                        &mut id_batch,
                    )
                } else {
                    columnar_hash_join_pred(
                        &cfg.predicate,
                        &enc.outer,
                        &r_rows,
                        &enc.inner,
                        &s_rows,
                        Interval::ALL,
                        &mut scratch,
                        &mut id_batch,
                    )
                };
                cpu.probes += hs.probes;
                cpu.match_tests += hs.match_tests;
                filter_checks = hs.filter_checks;
                filter_hits = hs.filter_hits;
                let materialized =
                    id_batch.materialize_each(&spec, &enc.outer, &enc.inner, |z| sink.push(z));
                columnar = Some(ColumnarCounters {
                    encode_micros: enc.encode_micros,
                    radix_passes: 0,
                    dict_size: enc.dict_size,
                    materialized_rows: materialized,
                });
            } else {
                let table = BlockTable::build(&spec, &block);
                if cfg.predicate.is_natural() {
                    for p in 0..inner.pages() {
                        for y in inner.read_page(p)? {
                            table.probe(&y, &mut sink, |_| true);
                        }
                    }
                } else {
                    for p in 0..inner.pages() {
                        for y in inner.read_page(p)? {
                            let (c, h) =
                                table.probe_each_pred(&cfg.predicate, &y, |z| sink.push(z));
                            filter_checks += c;
                            filter_hits += h;
                        }
                    }
                }
                cpu.absorb(&table);
            }
            tracker.phase("join");
            let faults = tracker.fault_summary(0);
            let (io, phases) = tracker.finish();
            let (result_tuples, result_pages, result) = sink.finish();
            let planner_out = PlannerOutput::degenerate(outer.pages());
            let report = JoinReport {
                algorithm: "partition",
                result_tuples,
                result_pages,
                io,
                phases,
                result,
                notes: {
                    let mut notes = vec![
                        ("num_partitions".to_string(), 1),
                        ("samples_drawn".to_string(), 0),
                        ("cache_pages_written".to_string(), 0),
                        ("overflow_chunks".to_string(), 0),
                    ];
                    notes.extend(cpu.notes());
                    if !cfg.predicate.is_natural() {
                        notes.push(("filter_checks".to_string(), filter_checks as i64));
                        notes.push(("filter_hits".to_string(), filter_hits as i64));
                    }
                    if let Some(c) = columnar {
                        notes.extend(columnar_notes(&c));
                    }
                    notes
                },
                faults,
            };
            return Ok((report, planner_out));
        }

        let inner_sample = if self.sample_inner_for_cache {
            Some(inner)
        } else {
            None
        };
        let planner_out = planner::determine_part_intervals(outer, inner, inner_sample, cfg)?;
        tracker.phase("plan");

        let plan = &planner_out.plan;
        let r_parts = grace::do_partitioning(outer, &plan.intervals, cfg.buffer_pages)?;
        let s_parts = grace::do_partitioning(inner, &plan.intervals, cfg.buffer_pages)?;
        tracker.phase("partition");

        let exec_notes = exec::join_partitions(
            &r_parts,
            &s_parts,
            &plan.intervals,
            cfg.buffer_pages,
            self.reserved_cache_pages,
            &spec,
            &cfg.predicate,
            cfg.layout,
            &mut sink,
        )?;
        tracker.phase("join");

        let degraded = i64::from(planner_out.degraded);
        let faults = tracker.fault_summary(degraded);
        let (io, phases) = tracker.finish();
        let (result_tuples, result_pages, result) = sink.finish();
        let mut report = JoinReport {
            algorithm: "partition",
            result_tuples,
            result_pages,
            io,
            phases,
            result,
            notes: vec![
                ("num_partitions".into(), plan.intervals.len() as i64),
                ("part_size".into(), plan.part_size as i64),
                ("samples_drawn".into(), plan.samples_drawn as i64),
                ("cache_pages_written".into(), exec_notes.cache_pages_written),
                ("cache_page_reads".into(), exec_notes.cache_page_reads),
                ("overflow_chunks".into(), exec_notes.overflow_chunks),
                (
                    "retained_outer_tuples".into(),
                    exec_notes.retained_outer_tuples,
                ),
                ("planner_degraded".into(), degraded),
                ("cpu_probes".into(), exec_notes.cpu.probes as i64),
                ("cpu_match_tests".into(), exec_notes.cpu.match_tests as i64),
                // Lifted into the schema-v4 `kernel` section by
                // `execution_report`; the serial executor always joins with
                // the hash kernel (its inner side streams page-at-a-time).
                ("kernel_hash_partitions".into(), exec_notes.hash_tables),
                ("kernel_batches_flushed".into(), exec_notes.batches_flushed),
            ],
            faults,
        };
        if !cfg.predicate.is_natural() {
            report
                .notes
                .push(("filter_checks".into(), exec_notes.filter_checks));
            report
                .notes
                .push(("filter_hits".into(), exec_notes.filter_hits));
        }
        if let Some(c) = exec_notes.columnar {
            report.notes.extend(columnar_notes(&c));
        }
        Ok((report, planner_out))
    }
}

/// Renders the columnar pass's accounting as report notes; lifted into
/// the schema-v9 `columnar` section by `execution_report` (keyed on the
/// `columnar_dict_size` note).
fn columnar_notes(c: &ColumnarCounters) -> Vec<(String, i64)> {
    vec![
        ("columnar_encode_micros".into(), c.encode_micros as i64),
        ("columnar_radix_passes".into(), c.radix_passes as i64),
        ("columnar_dict_size".into(), c.dict_size as i64),
        (
            "columnar_materialized_rows".into(),
            c.materialized_rows as i64,
        ),
    ]
}

fn read_whole(heap: &HeapFile) -> Result<Vec<Tuple>> {
    let mut out = Vec::with_capacity(heap.tuples() as usize);
    for p in 0..heap.pages() {
        out.extend(heap.read_page(p)?);
    }
    Ok(out)
}

impl JoinAlgorithm for PartitionJoin {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn execute(&self, outer: &HeapFile, inner: &HeapFile, cfg: &JoinConfig) -> Result<JoinReport> {
        self.execute_with_plan(outer, inner, cfg).map(|(r, _)| r)
    }
}
