//! Choosing the partition size (algorithm `determinePartIntervals`,
//! Figure 10).
//!
//! For a buffer of `buffSize` pages devoted to the outer-partition area,
//! every candidate partition size `partSize` implies an error budget
//! `errorSize = buffSize − partSize` and hence, via the Kolmogorov bound, a
//! sample count and sampling cost `C_sample`; the samples in turn give the
//! partitioning intervals and an estimate of the tuple-cache paging that
//! determines `C_join`. The planner returns the candidate minimizing
//! `C_sample + C_join` (Grace partitioning cost is independent of the
//! choice, §3.4), together with the full per-candidate cost table — the
//! data behind the paper's Figure 4 trade-off plot.
//!
//! Deviations from the published pseudocode, recorded in DESIGN.md:
//!
//! * the paper iterates `partSize` from 1 to `buffSize`; the cost curve is
//!   smooth, so this implementation evaluates a configurable stride of
//!   candidates ([`crate::JoinConfig::planner_candidates`]) spanning the
//!   same range — including both endpoints — which finds the same minimum;
//! * candidates that would produce more partitions than the Grace phase
//!   has output buffers for (`numPartitions > buffer_pages − 1`) are
//!   infeasible and skipped;
//! * physical sampling is performed once, up front, at the largest sample
//!   count any candidate requires (the paper draws incrementally inside
//!   the loop, reaching the same total), with the §4.2 sequential-scan cap
//!   applied.

use super::cache_est::estimate_cache_sizes;
use super::exec::buffer_layout;
use super::intervals::{choose_from_events, choose_intervals, equal_width, SweepEvents};
use super::sampling::{collect_pool, kolmogorov_samples, SamplePool};
use crate::common::{JoinConfig, JoinError, Result};
use vtjoin_core::Interval;
use vtjoin_storage::{HeapFile, StorageError};

/// One row of the planner's cost table (one candidate `partSize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateCost {
    /// Candidate outer-partition size in pages.
    pub part_size: u64,
    /// Implied number of partitions `⌈|r| / partSize⌉`.
    pub num_partitions: u64,
    /// Kolmogorov-required sample count for the implied error budget.
    pub samples_required: u64,
    /// Estimated sampling cost `m × IO_ran` (uncapped, per Figure 10).
    pub c_sample: u64,
    /// Estimated partition-joining cost, including tuple-cache paging.
    pub c_join: u64,
    /// Estimated total tuple-cache pages across all partitions.
    pub cache_pages: u64,
    /// The tuple-cache paging component of `c_join` (what the paper's
    /// Figure 4 plots against `C_sample`).
    pub c_cache: u64,
    /// Partition-count-dependent Grace flush seeks. §3.4 assumes the
    /// partitioning cost "is not affected by the chosen partition size",
    /// but with the buffer divided among `n` partitions each flush burst
    /// is only `(M−1)/n` pages, so the number of random flushes grows with
    /// `n`; this term keeps the objective honest (see DESIGN.md).
    pub c_partition_seeks: u64,
}

impl CandidateCost {
    /// The planner's objective for this candidate.
    pub fn total(&self) -> u64 {
        self.c_sample + self.c_join + self.c_partition_seeks
    }
}

/// The chosen plan.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Chosen outer-partition size in pages.
    pub part_size: u64,
    /// The partitioning intervals (cover all of valid time).
    pub intervals: Vec<Interval>,
    /// Estimated tuple-cache pages per partition.
    pub est_cache_pages: Vec<u64>,
    /// Samples physically drawn (I/O already charged).
    pub samples_drawn: u64,
    /// The winning candidate's estimated cost.
    pub est_cost: u64,
}

/// Plan plus the full candidate table.
#[derive(Debug, Clone)]
pub struct PlannerOutput {
    /// The chosen plan.
    pub plan: PartitionPlan,
    /// Every evaluated candidate, ascending by `part_size`.
    pub candidates: Vec<CandidateCost>,
    /// True when sampling I/O failed and the planner fell back to
    /// sampling-free equal-width partitioning (cost-table-free, like the
    /// degenerate plan). Correctness is unaffected; only performance
    /// suffers, exactly the paper's tolerance for estimate error.
    pub degraded: bool,
}

impl PlannerOutput {
    /// The trivial single-partition plan used when the outer relation fits
    /// in memory outright.
    pub fn degenerate(r_pages: u64) -> PlannerOutput {
        PlannerOutput {
            plan: PartitionPlan {
                part_size: r_pages.max(1),
                intervals: vec![Interval::ALL],
                est_cache_pages: vec![0],
                samples_drawn: 0,
                est_cost: 0,
            },
            candidates: Vec::new(),
            degraded: false,
        }
    }

    /// A plan rebuilt from previously computed partition boundaries — the
    /// plan-cache reuse hook. Skips Kolmogorov sampling entirely (zero
    /// sampling I/O, `samples_drawn = 0`) and carries no cost table: the
    /// costs were paid and recorded by the run that first produced these
    /// intervals. Correctness does not depend on the statistics still
    /// matching — the intervals partition all of valid time, so any tuple
    /// lands somewhere — only balance does, which is exactly the paper's
    /// `errorSize` tolerance for estimate drift (the caller is responsible
    /// for invalidating entries that drift past it, see
    /// [`plan_error_size`]).
    pub fn reused(intervals: Vec<Interval>, part_size: u64) -> PlannerOutput {
        let est_cache_pages = vec![0; intervals.len()];
        PlannerOutput {
            plan: PartitionPlan {
                part_size: part_size.max(1),
                intervals,
                est_cache_pages,
                samples_drawn: 0,
                est_cost: 0,
            },
            candidates: Vec::new(),
            degraded: false,
        }
    }

    /// The graceful-degradation plan: when sampling I/O fails (injected
    /// faults exhausting their retries, or corruption detected by the page
    /// checksum), fall back to equal-width intervals over the outer
    /// relation's catalog time hull — zone maps are free to consult, so
    /// this path performs **no further I/O** and cannot fail again. The
    /// partition size splits the feasible range: small enough to hedge
    /// against skew-driven overflow, large enough not to explode the
    /// partition count.
    fn degraded_equal_width(
        outer: &HeapFile,
        r_pages: u64,
        min_part: u64,
        max_part: u64,
    ) -> PlannerOutput {
        let part_size = min_part + (max_part - min_part) / 2;
        let num_partitions = r_pages.div_ceil(part_size).max(1);
        let hull = outer.time_hull().unwrap_or(Interval::ALL);
        let intervals = equal_width(hull, num_partitions);
        let est_cache_pages = vec![0; intervals.len()];
        PlannerOutput {
            plan: PartitionPlan {
                part_size,
                intervals,
                est_cache_pages,
                samples_drawn: 0,
                est_cost: 0,
            },
            candidates: Vec::new(),
            degraded: true,
        }
    }
}

/// Whether a sampling failure is one the planner may absorb by degrading
/// to equal-width partitioning: transient device faults that exhausted
/// their retries, and corruption detected by the page checksum. Logic
/// errors (out-of-bounds pages, schema trouble) still propagate.
fn degradable(e: &JoinError) -> bool {
    match e {
        JoinError::Storage(se) => {
            se.is_transient()
                || matches!(
                    se,
                    StorageError::Corrupt(_) | StorageError::UnwrittenPage(_)
                )
        }
        _ => false,
    }
}

/// Runs the Figure 10 cost loop. `inner` provides the inner relation's
/// geometry for the `C_join` estimate; `inner_sample` activates the §5
/// extension of sampling the inner relation for cache estimation instead
/// of reusing the outer sample.
pub fn determine_part_intervals(
    outer: &HeapFile,
    inner: &HeapFile,
    inner_sample: Option<&HeapFile>,
    cfg: &JoinConfig,
) -> Result<PlannerOutput> {
    let r_pages = outer.pages();
    // The executor's buffer layout, from the one shared formula: inner
    // page + cache page + result page + the cache write-combining buffer
    // all come off the top.
    let layout = buffer_layout(cfg.buffer_pages, 0);
    if layout.sizing_area < 2 {
        return Err(JoinError::InsufficientMemory {
            algorithm: "partition",
            needed: 6,
            available: cfg.buffer_pages,
        });
    }
    let buff_size = layout.sizing_area;

    // Grace feasibility: one input page plus one output buffer page per
    // partition must fit in memory.
    let min_part = r_pages.div_ceil(cfg.buffer_pages - 1).max(1);
    let max_part = buff_size - 1; // errorSize ≥ 1
    if min_part > max_part {
        return Err(JoinError::InsufficientMemory {
            algorithm: "partition",
            needed: r_pages.div_ceil(max_part) + 1,
            available: cfg.buffer_pages,
        });
    }

    // ---- physical sampling, charged ------------------------------------------
    // When sampling I/O fails in a degradable way (retry-exhausted
    // transient faults, checksum-detected corruption), fall back to the
    // sampling-free equal-width plan instead of failing the whole join:
    // the degradation ladder is retry → equal-width fallback → typed error.
    let m_largest = kolmogorov_samples(r_pages, buff_size - max_part);
    let sampled: Result<(SamplePool, SamplePool)> = (|| {
        let pool = collect_pool(outer, m_largest, cfg.ratio, cfg.seed)?;
        let cache_pool: SamplePool = match inner_sample {
            Some(h) => collect_pool(h, m_largest, cfg.ratio, cfg.seed ^ 0x9e37_79b9)?,
            None => pool.clone(),
        };
        Ok((pool, cache_pool))
    })();
    let (pool, cache_pool) = match sampled {
        Ok(pools) => pools,
        Err(e) if degradable(&e) => {
            return Ok(PlannerOutput::degraded_equal_width(
                outer, r_pages, min_part, max_part,
            ));
        }
        Err(e) => return Err(e),
    };

    let full_events = SweepEvents::build(pool.intervals());

    let s_tpp = tuples_per_page(inner);
    let s_pages = inner.pages();
    let ran = cfg.ratio.random;

    // ---- the cost loop -----------------------------------------------------------
    let candidates_wanted = cfg.planner_candidates.max(2);
    let mut candidates = Vec::new();
    let mut best: Option<(CandidateCost, Vec<Interval>, Vec<u64>)> = None;

    let mut part_size = min_part;
    let stride = ((max_part - min_part) / (candidates_wanted - 1)).max(1);
    while part_size <= max_part {
        let num_partitions = r_pages.div_ceil(part_size);
        let m_required = kolmogorov_samples(r_pages, buff_size - part_size);
        let m_use = (m_required).min(pool.len() as u64);

        // Partitioning intervals from the sample prefix (full-pool fast
        // path avoids re-sorting the events for every large candidate).
        let ivs = if m_use == pool.len() as u64 {
            choose_from_events(&full_events, num_partitions)
        } else {
            choose_intervals(pool.prefix(m_use), num_partitions)
        };

        // Cache estimate uses the inner-relation scale.
        let cache_samples = cache_pool.prefix(m_use.min(cache_pool.len() as u64));
        let est_cache = estimate_cache_sizes(cache_samples, cache_pool.population, &ivs, s_tpp);
        let cache_pages: u64 = est_cache.iter().sum();

        let n_actual = ivs.len() as u64;
        let s_part_pages = s_pages.div_ceil(n_actual.max(1)).max(1);
        // C_join (Figure 10): fetching every outer and inner partition —
        // one seek plus sequential reads each — plus writing and re-reading
        // the tuple cache.
        let fetch_cost = n_actual * ran
            + (part_size - 1) * n_actual
            + n_actual * ran
            + (s_part_pages - 1) * n_actual;
        let mut c_cache = 0;
        for &m in &est_cache {
            if m > 0 {
                c_cache += 2 * (ran + (m - 1));
            }
        }
        let c_join = fetch_cost + c_cache;
        // Grace flush seeks: both relations are written through per-
        // partition buffers of (M−1)/n pages; each burst pays one seek
        // (random instead of sequential costs `ran − 1` extra).
        let share = ((cfg.buffer_pages - 1) / n_actual.max(1)).max(1);
        let c_partition_seeks =
            (r_pages.div_ceil(share) + s_pages.div_ceil(share)) * ran.saturating_sub(1);
        // Figure 10 prices sampling at m × IO_ran, *uncapped*: the §4.2
        // sequential-scan cap is an execution-time optimization (applied
        // by `collect_pool` to the physical sampling), not part of the
        // planning objective — capping here would flatten C_sample and
        // push the optimum to errorSize = 1, guaranteeing overflow.
        let c_sample = m_required.saturating_mul(cfg.ratio.random);

        let cand = CandidateCost {
            part_size,
            num_partitions,
            samples_required: m_required,
            c_sample,
            c_join,
            cache_pages,
            c_cache,
            c_partition_seeks,
        };
        candidates.push(cand);
        // Figure 10 keeps `cost ≤ minCost`, so later (larger) partition
        // sizes win ties.
        if best
            .as_ref()
            .is_none_or(|(b, _, _)| cand.total() <= b.total())
        {
            best = Some((cand, ivs, est_cache));
        }

        if part_size == max_part {
            break;
        }
        part_size = (part_size + stride).min(max_part);
    }

    // `min_part <= max_part` was checked above, so the loop ran at least
    // once; still, surface a missing winner as a typed error rather than
    // a panic so no execution path can bring the process down.
    let (winner, intervals, est_cache_pages) =
        best.ok_or(JoinError::Internal("planner evaluated no candidates"))?;
    Ok(PlannerOutput {
        plan: PartitionPlan {
            part_size: winner.part_size,
            intervals,
            est_cache_pages,
            samples_drawn: pool.len() as u64,
            est_cost: winner.total(),
        },
        candidates,
        degraded: false,
    })
}

/// The paper's `errorSize` slack for a chosen `part_size` under `cfg`:
/// `buffSize − partSize` pages, where `buffSize` is the executor's
/// outer-partition sizing area. Each partition may overshoot its target by
/// up to this many pages before the plan's cost estimates stop holding —
/// the same bound a plan cache must apply when deciding whether cached
/// boundaries still fit relations whose statistics have drifted.
pub fn plan_error_size(cfg: &JoinConfig, part_size: u64) -> u64 {
    buffer_layout(cfg.buffer_pages, 0)
        .sizing_area
        .saturating_sub(part_size)
}

fn tuples_per_page(heap: &HeapFile) -> f64 {
    if heap.pages() == 0 {
        1.0
    } else {
        heap.tuples() as f64 / heap.pages() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::intervals::is_partitioning;
    use vtjoin_core::{AttrDef, AttrType, Relation, Schema, Tuple, Value};
    use vtjoin_storage::{CostRatio, SharedDisk};

    fn load(disk: &SharedDisk, n: i64, long_every: i64, lifespan: i64) -> HeapFile {
        let schema = Schema::new(vec![AttrDef::new("k", AttrType::Int)])
            .unwrap()
            .into_shared();
        let tuples = (0..n)
            .map(|i| {
                let start = (i * 7919) % lifespan;
                let iv = if long_every > 0 && i % long_every == 0 {
                    let s = start % (lifespan / 2);
                    Interval::from_raw(s, s + lifespan / 2).unwrap()
                } else {
                    Interval::from_raw(start, start).unwrap()
                };
                Tuple::new(vec![Value::Int(i)], iv)
            })
            .collect();
        let rel = Relation::from_parts_unchecked(schema, tuples);
        HeapFile::bulk_load(disk, &rel).unwrap()
    }

    fn cfg(buffer: u64) -> JoinConfig {
        JoinConfig::with_buffer(buffer).ratio(CostRatio::R5)
    }

    #[test]
    fn produces_a_valid_partitioning() {
        let disk = SharedDisk::new(128);
        let r = load(&disk, 800, 0, 1000); // 200 pages
        let s = load(&disk, 800, 0, 1000);
        let out = determine_part_intervals(&r, &s, None, &cfg(20)).unwrap();
        assert!(is_partitioning(&out.plan.intervals));
        assert!(out.plan.part_size >= 1);
        assert!(!out.candidates.is_empty());
        assert_eq!(out.plan.est_cache_pages.len(), out.plan.intervals.len());
        // The chosen candidate is the argmin of the table.
        let min = out
            .candidates
            .iter()
            .map(CandidateCost::total)
            .min()
            .unwrap();
        assert_eq!(out.plan.est_cost, min);
    }

    #[test]
    fn partitions_are_roughly_equal_depth() {
        let disk = SharedDisk::new(128);
        let r = load(&disk, 2000, 0, 5000); // uniform one-chronon tuples
        let s = load(&disk, 2000, 0, 5000);
        let out = determine_part_intervals(&r, &s, None, &cfg(40)).unwrap();
        let rel = r.read_all().unwrap();
        // Count stored tuples (by last-overlap placement) per partition.
        let mut counts = vec![0u64; out.plan.intervals.len()];
        for t in rel.iter() {
            let p = crate::partition::intervals::partition_of(&out.plan.intervals, t.valid().end());
            counts[p] += 1;
        }
        let expect = rel.len() as u64 / counts.len() as u64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c as f64 <= expect as f64 * 1.5 + 16.0,
                "partition {i} holds {c}, expected ≈{expect} of {counts:?}"
            );
        }
    }

    #[test]
    fn sampling_cost_curves_shape_of_figure_4() {
        // C_sample must be non-decreasing in partSize; the cache component
        // of C_join non-increasing (long-lived tuples overlap fewer, larger
        // partitions).
        let disk = SharedDisk::new(128);
        let r = load(&disk, 2000, 5, 2000);
        let s = load(&disk, 2000, 5, 2000);
        let out = determine_part_intervals(&r, &s, None, &cfg(60)).unwrap();
        let cands = &out.candidates;
        assert!(cands.len() >= 3);
        for w in cands.windows(2) {
            assert!(
                w[1].c_sample >= w[0].c_sample,
                "C_sample not monotone: {:?} -> {:?}",
                w[0],
                w[1]
            );
            // Cache paging shrinks with partition size up to sampling
            // noise (each candidate re-estimates from a different prefix
            // of the pool): allow a 10% wobble per step…
            assert!(
                w[1].cache_pages as f64 <= w[0].cache_pages as f64 * 1.10 + 4.0,
                "cache pages should shrink with partSize: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // …but require a clear overall decrease across the sweep.
        let first = cands.first().unwrap().cache_pages;
        let last = cands.last().unwrap().cache_pages;
        assert!(last < first, "cache pages overall: {last} !< {first}");
    }

    #[test]
    fn more_long_lived_tuples_mean_more_estimated_cache() {
        let disk = SharedDisk::new(128);
        let r0 = load(&disk, 2000, 0, 2000);
        let r1 = load(&disk, 2000, 4, 2000);
        let s = load(&disk, 2000, 0, 2000);
        let c = cfg(30);
        let none = determine_part_intervals(&r0, &s, None, &c).unwrap();
        let many = determine_part_intervals(&r1, &s, None, &c).unwrap();
        let sum0: u64 = none.plan.est_cache_pages.iter().sum();
        let sum1: u64 = many.plan.est_cache_pages.iter().sum();
        assert!(sum1 > sum0, "long-lived cache {sum1} !> {sum0}");
    }

    #[test]
    fn inner_sampling_extension_uses_inner_distribution() {
        let disk = SharedDisk::new(128);
        // Outer has no long-lived tuples; inner has many. The paper's
        // similar-distribution assumption underestimates the cache; the
        // extension fixes it.
        let r = load(&disk, 2000, 0, 2000);
        let s = load(&disk, 2000, 3, 2000);
        let c = cfg(30);
        let assumed = determine_part_intervals(&r, &s, None, &c).unwrap();
        let sampled = determine_part_intervals(&r, &s, Some(&s), &c).unwrap();
        let a: u64 = assumed.plan.est_cache_pages.iter().sum();
        let b: u64 = sampled.plan.est_cache_pages.iter().sum();
        assert!(
            b > a,
            "inner sampling must see the long-lived inner tuples: {b} !> {a}"
        );
    }

    #[test]
    fn planner_charges_sampling_io() {
        let disk = SharedDisk::new(128);
        let r = load(&disk, 800, 0, 1000);
        let s = load(&disk, 800, 0, 1000);
        disk.reset_stats();
        let _ = determine_part_intervals(&r, &s, None, &cfg(20)).unwrap();
        let st = disk.stats();
        assert!(st.total_ios() > 0, "sampling is physical I/O");
        // Capped at one scan of the outer relation.
        assert!(st.random_reads + st.seq_reads <= r.pages());
    }

    #[test]
    fn infeasible_memory_is_rejected() {
        let disk = SharedDisk::new(128);
        let r = load(&disk, 4000, 0, 1000); // 1000 pages
        let s = load(&disk, 40, 0, 1000);
        // 5 buffer pages → outer area 2, max_part 1, min_part = 250.
        assert!(matches!(
            determine_part_intervals(&r, &s, None, &cfg(5)),
            Err(JoinError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn sampling_fault_degrades_to_equal_width() {
        let disk = SharedDisk::new(128);
        let r = load(&disk, 800, 0, 1000);
        let s = load(&disk, 800, 0, 1000);
        // Every read faults and no retry budget: sampling cannot proceed.
        disk.set_retry_policy(vtjoin_storage::RetryPolicy::NONE);
        disk.set_fault_config(Some(vtjoin_storage::FaultConfig {
            seed: 1,
            read_fail_permille: 1000,
            write_fail_permille: 0,
            torn_write_permille: 0,
        }));
        let out = determine_part_intervals(&r, &s, None, &cfg(20)).unwrap();
        assert!(out.degraded, "sampling failure must degrade, not error");
        assert!(out.candidates.is_empty(), "no cost table without samples");
        assert!(is_partitioning(&out.plan.intervals));
        assert_eq!(out.plan.samples_drawn, 0);
        assert_eq!(out.plan.est_cache_pages.len(), out.plan.intervals.len());
        // Feasibility bounds still hold for the fallback partition size.
        assert!(out.plan.part_size >= 1);
        disk.set_fault_config(None);
    }

    #[test]
    fn non_degradable_errors_still_propagate() {
        // InsufficientMemory is a configuration problem, not a device
        // fault — the fallback must not mask it.
        let disk = SharedDisk::new(128);
        let r = load(&disk, 4000, 0, 1000);
        let s = load(&disk, 40, 0, 1000);
        disk.set_fault_config(Some(vtjoin_storage::FaultConfig::uniform(1, 1000)));
        assert!(matches!(
            determine_part_intervals(&r, &s, None, &cfg(5)),
            Err(JoinError::InsufficientMemory { .. })
        ));
        disk.set_fault_config(None);
    }

    #[test]
    fn deterministic_given_seed() {
        let disk = SharedDisk::new(128);
        let r = load(&disk, 1000, 7, 1500);
        let s = load(&disk, 1000, 7, 1500);
        let a = determine_part_intervals(&r, &s, None, &cfg(24)).unwrap();
        let b = determine_part_intervals(&r, &s, None, &cfg(24)).unwrap();
        assert_eq!(a.plan.intervals, b.plan.intervals);
        assert_eq!(a.plan.part_size, b.plan.part_size);
    }
}
