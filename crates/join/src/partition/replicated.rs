//! The replication-based partition join — the Leung–Muntz alternative
//! (\[LM92b\]) the paper argues against (§3.2, §4.1).
//!
//! Instead of storing each tuple once and migrating it at join time, every
//! tuple is physically **copied into every partition it overlaps**. The
//! join phase then becomes embarrassingly simple — `rᵢ ⋈ sᵢ` partition by
//! partition, no retention, no tuple cache — at the price of secondary
//! storage proportional to the total overlap count and of update
//! complexity (the paper's stated reasons for avoiding it). Implemented
//! here as an ablation baseline so the trade can be measured.
//!
//! The same canonical-partition emission rule as the migrating variant
//! de-duplicates pairs co-present in several partitions.

use super::intervals::{self, replica_range};
use super::planner;
use crate::common::{
    BlockTable, JoinAlgorithm, JoinConfig, JoinError, JoinReport, JoinSpec, PhaseTracker, Result,
    ResultSink,
};
use std::sync::Arc;
use vtjoin_core::{Interval, Tuple};
use vtjoin_storage::{HeapFile, HeapWriter};

/// Partition join with tuple replication instead of migration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicatedPartitionJoin;

impl ReplicatedPartitionJoin {
    /// Same minimum as the migrating variant.
    pub const MIN_BUFFER_PAGES: u64 = 4;
}

/// Replicates `heap` into one file per partition: a tuple is written to
/// **every** partition it overlaps.
pub fn do_replicated_partitioning(
    heap: &HeapFile,
    ivs: &[Interval],
    buffer_pages: u64,
) -> Result<Vec<HeapFile>> {
    assert!(intervals::is_partitioning(ivs));
    let n = ivs.len() as u64;
    if buffer_pages < n + 1 {
        return Err(JoinError::InsufficientMemory {
            algorithm: "replicated-partitioning",
            needed: n + 1,
            available: buffer_pages,
        });
    }
    let share = ((buffer_pages - 1) / n).max(1) as usize;
    let disk = heap.disk().clone();
    // Worst case a tuple lands in every partition; extents are lazy, so
    // over-reserving is free.
    let mut writers: Vec<HeapWriter> = ivs
        .iter()
        .map(|_| {
            HeapWriter::create(&disk, Arc::clone(heap.schema()), heap.pages() + 1)
                .with_flush_batch(share)
        })
        .collect();
    for p in 0..heap.pages() {
        for t in heap.read_page(p)? {
            let range = replica_range(ivs, t.valid());
            for w in &mut writers[range] {
                w.push(&t)?;
            }
        }
    }
    let mut out = Vec::with_capacity(writers.len());
    for w in writers {
        out.push(w.finish()?);
    }
    Ok(out)
}

impl JoinAlgorithm for ReplicatedPartitionJoin {
    fn name(&self) -> &'static str {
        "partition-replicated"
    }

    fn execute(&self, outer: &HeapFile, inner: &HeapFile, cfg: &JoinConfig) -> Result<JoinReport> {
        if cfg.buffer_pages < Self::MIN_BUFFER_PAGES {
            return Err(JoinError::InsufficientMemory {
                algorithm: self.name(),
                needed: Self::MIN_BUFFER_PAGES,
                available: cfg.buffer_pages,
            });
        }
        if !cfg.predicate.is_natural() {
            return Err(JoinError::Precondition(
                "the replicated-partition ablation evaluates only the natural \
                 (intersection) predicate",
            ));
        }
        cfg.require_inner()?;
        let spec = JoinSpec::natural(outer.schema(), inner.schema())?;
        let disk = outer.disk().clone();
        let mut tracker = PhaseTracker::start(&disk);
        let mut sink = ResultSink::new(
            Arc::clone(spec.out_schema()),
            disk.page_size(),
            cfg.collect_result,
        );

        let outer_area = cfg.buffer_pages - 3;
        // Plan with the same planner as the migrating variant (replication
        // has no tuple cache, but the equal-depth boundaries still apply).
        let ivs = if outer.pages() <= outer_area {
            vec![Interval::ALL]
        } else {
            planner::determine_part_intervals(outer, inner, None, cfg)?
                .plan
                .intervals
        };
        tracker.phase("plan");

        let r_parts = do_replicated_partitioning(outer, &ivs, cfg.buffer_pages)?;
        let s_parts = do_replicated_partitioning(inner, &ivs, cfg.buffer_pages)?;
        tracker.phase("partition");

        let page_capacity = vtjoin_storage::PageBuf::capacity_bytes(disk.page_size());
        let mut overflow_chunks = 0i64;
        for (i, p_i) in ivs.iter().enumerate() {
            let mut block: Vec<Tuple> = Vec::new();
            for p in 0..r_parts[i].pages() {
                block.extend(r_parts[i].read_page(p)?);
            }
            let chunks = super::exec_chunks(&block, page_capacity, outer_area)?;
            overflow_chunks += chunks.len() as i64 - 1;
            for range in chunks {
                let table = BlockTable::build(&spec, &block[range]);
                let emit = |z: &Tuple| p_i.contains_chronon(z.valid().end());
                for sp in 0..s_parts[i].pages() {
                    for y in s_parts[i].read_page(sp)? {
                        table.probe(&y, &mut sink, emit);
                    }
                }
            }
        }
        tracker.phase("join");

        let replicated_pages: i64 = r_parts
            .iter()
            .chain(&s_parts)
            .map(|p| p.pages() as i64)
            .sum();
        let base_pages = (outer.pages() + inner.pages()) as i64;
        let faults = tracker.fault_summary(0);
        let (io, phases) = tracker.finish();
        let (result_tuples, result_pages, result) = sink.finish();
        Ok(JoinReport {
            algorithm: self.name(),
            result_tuples,
            result_pages,
            io,
            phases,
            result,
            notes: vec![
                ("num_partitions".into(), ivs.len() as i64),
                ("replicated_pages".into(), replicated_pages),
                ("base_pages".into(), base_pages),
                ("overflow_chunks".into(), overflow_chunks),
            ],
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::intervals::equal_width;
    use vtjoin_core::algebra::natural_join;
    use vtjoin_core::{AttrDef, AttrType, Relation, Schema, Value};
    use vtjoin_storage::SharedDisk;

    fn schema(b: &str) -> Arc<vtjoin_core::Schema> {
        Schema::new(vec![
            AttrDef::new("k", AttrType::Int),
            AttrDef::new(b, AttrType::Int),
        ])
        .unwrap()
        .into_shared()
    }

    fn rel(b: &str, n: i64, long_every: i64) -> Relation {
        let tuples = (0..n)
            .map(|i| {
                let start = (i * 29) % 300;
                let iv = if long_every > 0 && i % long_every == 0 {
                    Interval::from_raw(start % 150, start % 150 + 150).unwrap()
                } else {
                    Interval::from_raw(start, start).unwrap()
                };
                Tuple::new(vec![Value::Int(i % 5), Value::Int(i)], iv)
            })
            .collect();
        Relation::from_parts_unchecked(schema(b), tuples)
    }

    #[test]
    fn replication_copies_spanning_tuples() {
        let disk = SharedDisk::new(256);
        let r = rel("b", 100, 4);
        let heap = HeapFile::bulk_load(&disk, &r).unwrap();
        let ivs = equal_width(Interval::from_raw(0, 300).unwrap(), 4);
        let parts = do_replicated_partitioning(&heap, &ivs, 16).unwrap();
        let total: u64 = parts.iter().map(HeapFile::tuples).sum();
        assert!(
            total > heap.tuples(),
            "long-lived tuples must be replicated"
        );
        // Every copy is in a partition it overlaps.
        for (i, p) in parts.iter().enumerate() {
            for t in p.read_all().unwrap().iter() {
                assert!(t.valid().overlaps(ivs[i]));
            }
        }
    }

    #[test]
    fn matches_oracle() {
        let disk = SharedDisk::new(256);
        let r = rel("b", 160, 4);
        let s = rel("c", 160, 3);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = ReplicatedPartitionJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(12).collecting())
            .unwrap();
        let want = natural_join(&r, &s).unwrap();
        let got = report.result.as_ref().unwrap();
        assert!(
            got.multiset_eq(&want),
            "got {} want {} diff {:?}",
            got.len(),
            want.len(),
            got.multiset_diff(&want).len()
        );
    }

    #[test]
    fn reports_storage_blowup() {
        let disk = SharedDisk::new(256);
        let r = rel("b", 300, 2); // heavy replication
        let s = rel("c", 300, 2);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = ReplicatedPartitionJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(12))
            .unwrap();
        let repl = report.note("replicated_pages").unwrap();
        let base = report.note("base_pages").unwrap();
        assert!(
            repl > base,
            "replication must use more storage: {repl} !> {base}"
        );
    }
}
