//! Outer-relation sampling for partition sizing (paper §3.4 and §4.2).
//!
//! The number of samples comes from the **Kolmogorov test statistic**
//! (\[Con71\], as used for band-joins by \[DNS91\]): with 99% confidence
//! the percentile of each chosen partitioning chronon differs from the
//! exact choice by at most `1.63/√m`, so an error budget of `errorSize`
//! pages out of `|r|` pages requires
//!
//! ```text
//! (1.63 · |r|) / √m ≤ errorSize   ⇒   m ≥ ((1.63 · |r|) / errorSize)²
//! ```
//!
//! Sampling one tuple costs one random page read. §4.2 observes that once
//! `m · IO_ran` exceeds the cost of scanning the whole outer relation
//! (`IO_ran + (|r| − 1) · IO_seq`), it is cheaper to scan sequentially and
//! draw the samples from the paged-in pages — making the sampling cost
//! proportional to the relation's page count. [`collect_pool`] implements
//! both regimes and charges whichever is cheaper.

use crate::common::{JoinError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use vtjoin_core::Interval;
use vtjoin_storage::{CostRatio, HeapFile};

/// The Kolmogorov 99%-confidence coefficient.
pub const KOLMOGOROV_99: f64 = 1.63;

/// Number of samples required so that, with 99% confidence, each chosen
/// partition boundary is within `error_pages` pages of the exact boundary
/// of an `r_pages`-page relation. Saturates at `u64::MAX`.
pub fn kolmogorov_samples(r_pages: u64, error_pages: u64) -> u64 {
    if error_pages == 0 {
        return u64::MAX;
    }
    let ratio = KOLMOGOROV_99 * r_pages as f64 / error_pages as f64;
    let m = (ratio * ratio).ceil();
    if m >= u64::MAX as f64 {
        u64::MAX
    } else {
        (m as u64).max(1)
    }
}

/// Cost of sequentially scanning a `pages`-page file: one seek plus
/// `pages − 1` sequential reads.
pub fn scan_cost(pages: u64, ratio: CostRatio) -> u64 {
    if pages == 0 {
        0
    } else {
        ratio.random + (pages - 1)
    }
}

/// Estimated cost of drawing `m` samples from an `r_pages`-page relation:
/// `m` random reads, capped at one full sequential scan (§4.2).
pub fn sample_cost(m: u64, r_pages: u64, ratio: CostRatio) -> u64 {
    let random_cost = m.saturating_mul(ratio.random);
    random_cost.min(scan_cost(r_pages, ratio))
}

/// A randomly ordered pool of sampled valid-time intervals. Any prefix of
/// the pool is itself a uniform random sample, which is how the planner's
/// incremental per-candidate sampling (Figure 10) is realized.
#[derive(Debug, Clone)]
pub struct SamplePool {
    intervals: Vec<Interval>,
    /// Total tuples in the sampled relation (for scale-up estimates).
    pub population: u64,
    /// Whether the pool was collected via a full sequential scan.
    pub scanned: bool,
}

impl SamplePool {
    /// The sampled intervals, randomly ordered.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The first `m` intervals — a uniform random subsample (clamped to the
    /// pool size).
    pub fn prefix(&self, m: u64) -> &[Interval] {
        &self.intervals[..(m as usize).min(self.intervals.len())]
    }
}

/// Physically collects a sample pool of up to `m_target` tuples from
/// `heap`, charging real I/O:
///
/// * if `m_target` random reads are cheaper than one scan, draws `m_target`
///   distinct tuples by random page reads (one read per sample, as the
///   paper charges it);
/// * otherwise scans the relation once and reservoir-samples during the
///   scan (the §4.2 optimization), shuffling afterwards so pool prefixes
///   stay uniform.
pub fn collect_pool(
    heap: &HeapFile,
    m_target: u64,
    ratio: CostRatio,
    seed: u64,
) -> Result<SamplePool> {
    let population = heap.tuples();
    let m_target = m_target.min(population);
    let mut rng = StdRng::seed_from_u64(seed);

    if m_target == 0 || population == 0 {
        return Ok(SamplePool {
            intervals: Vec::new(),
            population,
            scanned: false,
        });
    }

    let random_cost = m_target.saturating_mul(ratio.random);
    if random_cost < scan_cost(heap.pages(), ratio) {
        // Random sampling without replacement: draw distinct tuple indices,
        // then one page read per sample (duplicate page reads are charged
        // again — a fresh random access each, exactly as the paper counts).
        let indices = sample_indices(&mut rng, population, m_target);
        let mut intervals = Vec::with_capacity(indices.len());
        for idx in indices {
            // A miss here means the sampler and the catalog disagree about
            // the population — surfaced as a typed error (not a panic) so
            // a fault-injected planning pass can degrade gracefully.
            let (page, slot) = heap.locate_tuple(idx).ok_or(JoinError::Internal(
                "sampled tuple index outside the heap population",
            ))?;
            let tuples = heap.read_page(page)?;
            intervals.push(tuples[slot as usize].valid());
        }
        intervals.shuffle(&mut rng);
        Ok(SamplePool {
            intervals,
            population,
            scanned: false,
        })
    } else {
        // Sequential scan with reservoir sampling.
        let mut reservoir: Vec<Interval> = Vec::with_capacity(m_target as usize);
        let mut seen = 0u64;
        for p in 0..heap.pages() {
            for t in heap.read_page(p)? {
                seen += 1;
                if (reservoir.len() as u64) < m_target {
                    reservoir.push(t.valid());
                } else {
                    let j = rng.gen_range(0..seen);
                    if j < m_target {
                        reservoir[j as usize] = t.valid();
                    }
                }
            }
        }
        reservoir.shuffle(&mut rng);
        Ok(SamplePool {
            intervals: reservoir,
            population,
            scanned: true,
        })
    }
}

/// Draws `m` distinct indices from `[0, n)` (Floyd's algorithm), in random
/// order.
fn sample_indices(rng: &mut StdRng, n: u64, m: u64) -> Vec<u64> {
    use std::collections::HashSet;
    debug_assert!(m <= n);
    let mut chosen: HashSet<u64> = HashSet::with_capacity(m as usize);
    let mut out = Vec::with_capacity(m as usize);
    for j in (n - m)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vtjoin_core::{AttrDef, AttrType, Relation, Schema, Tuple, Value};
    use vtjoin_storage::SharedDisk;

    fn heap_with(n: i64) -> (SharedDisk, HeapFile) {
        let schema = Schema::new(vec![AttrDef::new("k", AttrType::Int)])
            .unwrap()
            .into_shared();
        let tuples = (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i)], Interval::from_raw(i, i + 2).unwrap()))
            .collect();
        let rel = Relation::from_parts_unchecked(Arc::clone(&schema), tuples);
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &rel).unwrap();
        (disk, heap)
    }

    #[test]
    fn kolmogorov_bound_formula() {
        // Worked example: 8192-page relation, 100 error pages.
        let m = kolmogorov_samples(8192, 100);
        let exact = (1.63f64 * 8192.0 / 100.0).powi(2).ceil() as u64;
        assert_eq!(m, exact);
        assert!(m > 17_000 && m < 18_000);
        // Degenerate cases.
        assert_eq!(kolmogorov_samples(100, 0), u64::MAX);
        assert!(kolmogorov_samples(0, 5) >= 1);
        // Monotone: smaller error → more samples.
        assert!(kolmogorov_samples(8192, 10) > kolmogorov_samples(8192, 100));
    }

    #[test]
    fn paper_819_samples_worked_example() {
        // §4.2: at a 10:1 ratio, 819 random samples cost less than scanning
        // the whole 8192-page outer relation; 820 does not.
        let ratio = CostRatio::R10;
        let scan = scan_cost(8192, ratio);
        assert_eq!(scan, 10 + 8191);
        // The paper approximates the scan as 8192 sequential reads, giving
        // the break-even at exactly 819 samples; with the seek accounted
        // the break-even is one sample later — same conclusion.
        assert!(819 * 10 < scan);
        assert!(821 * 10 > scan);
        assert_eq!(sample_cost(819, 8192, ratio), 8190);
        assert_eq!(sample_cost(100_000, 8192, ratio), scan);
    }

    #[test]
    fn random_regime_charges_per_sample() {
        let (disk, heap) = heap_with(400); // 100 pages
        disk.reset_stats();
        let pool = collect_pool(&heap, 5, CostRatio::R10, 42).unwrap();
        assert_eq!(pool.len(), 5);
        assert!(!pool.scanned);
        let s = disk.stats();
        assert_eq!(s.random_reads + s.seq_reads, 5);
        // Each stand-alone page read is random.
        assert_eq!(s.random_reads, 5);
    }

    #[test]
    fn scan_regime_reads_whole_relation_once() {
        let (disk, heap) = heap_with(400); // 100 pages
        disk.reset_stats();
        // 50 samples × 10 = 500 ≥ scan cost 109 → scan regime.
        let pool = collect_pool(&heap, 50, CostRatio::R10, 42).unwrap();
        assert_eq!(pool.len(), 50);
        assert!(pool.scanned);
        let s = disk.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, heap.pages() - 1);
    }

    #[test]
    fn pool_prefixes_are_subsamples() {
        let (_, heap) = heap_with(100);
        let pool = collect_pool(&heap, 100, CostRatio::R2, 1).unwrap();
        assert_eq!(pool.len(), 100);
        assert_eq!(pool.prefix(10).len(), 10);
        assert_eq!(pool.prefix(1_000_000).len(), 100);
        // Distinct tuples have distinct intervals in this fixture: the pool
        // must have no duplicates (sampling without replacement).
        let mut seen = pool.intervals().to_vec();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (_, heap) = heap_with(200);
        let a = collect_pool(&heap, 20, CostRatio::R10, 7).unwrap();
        let b = collect_pool(&heap, 20, CostRatio::R10, 7).unwrap();
        let c = collect_pool(&heap, 20, CostRatio::R10, 8).unwrap();
        assert_eq!(a.intervals(), b.intervals());
        assert_ne!(a.intervals(), c.intervals());
    }

    #[test]
    fn empty_and_oversized_requests() {
        let (_, heap) = heap_with(10);
        let empty = collect_pool(&heap, 0, CostRatio::R5, 1).unwrap();
        assert!(empty.is_empty());
        let all = collect_pool(&heap, 1_000, CostRatio::R5, 1).unwrap();
        assert_eq!(all.len(), 10, "clamped to population");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n, m) in [(10u64, 10u64), (100, 7), (5, 1), (1000, 999)] {
            let idx = sample_indices(&mut rng, n, m);
            assert_eq!(idx.len(), m as usize);
            assert!(idx.iter().all(|&i| i < n));
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), m as usize, "distinct");
        }
    }
}
