//! Lifting a [`JoinReport`] into the unified [`ExecutionReport`].
//!
//! The join algorithms measure raw facts — I/O deltas, wall-clock per
//! phase, diagnostic notes. This module converts those facts into the
//! `vtjoin-obs` report schema and, for the partition join, attaches what
//! the planner *predicted* so the report can carry a predicted-vs-actual
//! deviation section (the check behind the paper's Figure 7/8 accuracy
//! claims). Field semantics are documented in `docs/OBSERVABILITY.md`.

use crate::common::{FaultSummary, JoinConfig, JoinReport};
use crate::partition::exec::buffer_layout;
use crate::partition::sampling::sample_cost;
use crate::partition::PlannerOutput;
use vtjoin_obs::{
    CandidateRow, ColumnarSection, ConfigSection, Counter, DeviationSection, ExecutionReport,
    FaultsSection, IoSection, KernelSection, PhaseSection, PlanSection, PredicateSection,
    PredictedCost, ResultSection,
};

/// Converts the join layer's fault accounting into the obs schema section.
fn faults_section(f: &FaultSummary) -> FaultsSection {
    FaultsSection {
        injected_read_faults: f.stats.injected_read_faults,
        injected_write_faults: f.stats.injected_write_faults,
        torn_writes: f.stats.torn_writes,
        checksum_failures: f.stats.checksum_failures,
        retries: f.stats.retries,
        recovered: f.stats.recovered,
        exhausted: f.stats.exhausted,
        backoff_steps: f.stats.backoff_steps,
        degraded: f.degraded,
    }
}

/// Lifts the `kernel_*` diagnostic notes an executor recorded into the
/// schema-v4 `kernel` section. Returns `None` (and leaves the notes for
/// the counter list) when the run recorded no kernel accounting, so
/// pre-kernel reports keep their exact shape.
fn kernel_section(report: &JoinReport) -> Option<KernelSection> {
    let get = |name: &str| report.note(name).map(|v| v as u64);
    let hash_partitions = get("kernel_hash_partitions");
    let sweep_partitions = get("kernel_sweep_partitions");
    if hash_partitions.is_none() && sweep_partitions.is_none() {
        return None;
    }
    Some(KernelSection {
        hash_partitions: hash_partitions.unwrap_or(0),
        sweep_partitions: sweep_partitions.unwrap_or(0),
        sweep_comparisons: get("kernel_sweep_comparisons").unwrap_or(0),
        batches_flushed: get("kernel_batches_flushed").unwrap_or(0),
    })
}

/// Lifts the predicate-filter diagnostic notes into the schema-v6
/// `predicate` section. Natural-join runs carry no section, so every
/// pre-predicate report keeps its exact shape.
fn predicate_section(report: &JoinReport, cfg: &JoinConfig) -> Option<PredicateSection> {
    if cfg.predicate.is_natural() {
        return None;
    }
    let get = |name: &str| report.note(name).map(|v| v as u64).unwrap_or(0);
    Some(PredicateSection {
        predicate: cfg.predicate.to_string(),
        template: cfg.predicate.template().as_str().to_owned(),
        filter_checks: get("filter_checks"),
        filter_hits: get("filter_hits"),
        merge_pairs_scanned: get("merge_pairs_scanned"),
        merge_pairs_emitted: get("merge_pairs_emitted"),
    })
}

/// Lifts the `columnar_*` diagnostic notes into the schema-v9 `columnar`
/// section. Row-layout runs record none of them and carry no section, so
/// pre-columnar reports keep their exact shape. Presence is keyed on the
/// deterministic counters (`dict_size`/`materialized_rows`), not the
/// wall-clock one.
fn columnar_section(report: &JoinReport) -> Option<ColumnarSection> {
    let get = |name: &str| report.note(name).map(|v| v as u64);
    get("columnar_dict_size")?;
    Some(ColumnarSection {
        encode_micros: get("columnar_encode_micros").unwrap_or(0),
        radix_passes: get("columnar_radix_passes").unwrap_or(0),
        dict_size: get("columnar_dict_size").unwrap_or(0),
        materialized_rows: get("columnar_materialized_rows").unwrap_or(0),
    })
}

/// Converts a finished [`JoinReport`] into an [`ExecutionReport`] with no
/// planner sections — the form every algorithm can produce. Phases carry
/// their measured I/O (priced at `cfg.ratio`) and wall-clock; notes become
/// named counters (`kernel_*` notes are additionally lifted into the
/// schema-v4 `kernel` section, predicate-filter notes into the schema-v6
/// `predicate` section).
pub fn execution_report(report: &JoinReport, cfg: &JoinConfig) -> ExecutionReport {
    ExecutionReport {
        algorithm: report.algorithm.to_owned(),
        config: ConfigSection {
            buffer_pages: cfg.buffer_pages,
            random_cost: cfg.ratio.random,
            seed: cfg.seed,
        },
        result: ResultSection {
            tuples: report.result_tuples,
            pages: report.result_pages,
        },
        io: IoSection::from_stats(report.io, cfg.ratio),
        phases: report
            .phases
            .iter()
            .map(|p| PhaseSection {
                name: p.name.to_owned(),
                wall_micros: p.wall_micros,
                io: IoSection::from_stats(p.io, cfg.ratio),
                predicted_cost: None,
            })
            .collect(),
        counters: report
            .notes
            .iter()
            .map(|(name, value)| Counter {
                name: name.clone(),
                value: *value,
            })
            .collect(),
        buffer_pool: None,
        plan: None,
        deviation: None,
        workers: Vec::new(),
        skew: None,
        kernel: kernel_section(report),
        faults: report.faults.as_ref().map(faults_section),
        service: None,
        predicate: predicate_section(report, cfg),
        grid: None,
        columnar: columnar_section(report),
        operator: None,
    }
}

/// Converts a partition-join run, attaching the planner's decisions and
/// predictions and the computed deviation section.
///
/// The deviation compares the cost model against the phases it actually
/// models (§3.4): sampling (the "plan" phase) and partition joining (the
/// "join" phase). Grace partitioning is excluded — its base cost does not
/// depend on the chosen partition size. Two subtleties:
///
/// * the *planning objective* prices sampling uncapped (`m × IO_ran`,
///   Figure 10), but *physical* sampling applies the §4.2 sequential-scan
///   cap, so the predicted side here uses the capped
///   [`sample_cost`] of the samples actually drawn;
/// * the tolerance is the model's own slack: each of the `n` partitions
///   may overshoot its `partSize` target by up to `errorSize` pages (the
///   Kolmogorov guarantee), each overrun page costing at most one cache
///   write plus one re-read at random price — `n × errorSize × 2 × IO_ran`.
///
/// For degenerate plans (outer fits in memory; the planner never ran its
/// cost loop) no plan or deviation section is attached.
pub fn partition_execution_report(
    report: &JoinReport,
    cfg: &JoinConfig,
    planner: &PlannerOutput,
    outer_pages: u64,
) -> ExecutionReport {
    let mut er = execution_report(report, cfg);
    if planner.candidates.is_empty() {
        return er;
    }

    let plan = &planner.plan;
    // The executor's buffer layout: inner page + cache page + result page +
    // the cache write-combining buffer, shared with planner.rs and exec.rs.
    let buff_size = buffer_layout(cfg.buffer_pages, 0).sizing_area;
    let error_size = buff_size.saturating_sub(plan.part_size);
    let num_partitions = plan.intervals.len() as u64;

    // The chosen part_size always comes from the candidate table; if a
    // malformed PlannerOutput ever breaks that invariant, emit the report
    // without plan sections rather than panicking mid-request.
    let Some(chosen) = planner
        .candidates
        .iter()
        .find(|c| c.part_size == plan.part_size)
        .copied()
    else {
        return er;
    };

    er.plan = Some(PlanSection {
        part_size: plan.part_size,
        num_partitions,
        error_size,
        samples_drawn: plan.samples_drawn,
        est_cache_pages: plan.est_cache_pages.iter().sum(),
        predicted: PredictedCost {
            c_sample: chosen.c_sample,
            c_join: chosen.c_join,
            c_cache: chosen.c_cache,
            c_partition_seeks: chosen.c_partition_seeks,
            total: chosen.total(),
        },
        candidates: planner
            .candidates
            .iter()
            .map(|c| CandidateRow {
                part_size: c.part_size,
                num_partitions: c.num_partitions,
                samples_required: c.samples_required,
                c_sample: c.c_sample,
                c_join: c.c_join,
                c_cache: c.c_cache,
                c_partition_seeks: c.c_partition_seeks,
                total: c.total(),
                chosen: c.part_size == plan.part_size,
            })
            .collect(),
    });

    // Per-phase predictions: the capped sampling cost for "plan", the
    // chosen candidate's C_join for "join".
    let capped_sample = sample_cost(plan.samples_drawn, outer_pages, cfg.ratio);
    for ph in &mut er.phases {
        ph.predicted_cost = match ph.name.as_str() {
            "plan" => Some(capped_sample),
            "join" => Some(chosen.c_join),
            _ => None,
        };
    }

    let actual: u64 = er
        .phases
        .iter()
        .filter(|p| p.name == "plan" || p.name == "join")
        .map(|p| p.io.cost)
        .sum();
    let tolerance = num_partitions * error_size * 2 * cfg.ratio.random;
    er.deviation = Some(DeviationSection::compute(
        capped_sample + chosen.c_join,
        actual,
        tolerance,
    ));
    er
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{JoinAlgorithm, JoinConfig};
    use crate::partition::PartitionJoin;
    use vtjoin_core::{AttrDef, AttrType, Interval, Relation, Schema, Tuple, Value};
    use vtjoin_storage::{HeapFile, SharedDisk};

    fn load(disk: &SharedDisk, key_mod: i64, n: i64) -> HeapFile {
        let schema = Schema::new(vec![AttrDef::new("k", AttrType::Int)])
            .unwrap()
            .into_shared();
        let tuples = (0..n)
            .map(|i| {
                let s = (i * 31) % 1000;
                Tuple::new(
                    vec![Value::Int(i % key_mod)],
                    Interval::from_raw(s, s + i % 7).unwrap(),
                )
            })
            .collect();
        HeapFile::bulk_load(disk, &Relation::from_parts_unchecked(schema, tuples)).unwrap()
    }

    #[test]
    fn base_conversion_preserves_measurements() {
        let disk = SharedDisk::new(128);
        let hr = load(&disk, 40, 900);
        let hs = load(&disk, 40, 900);
        let cfg = JoinConfig::with_buffer(16);
        let report = crate::SortMergeJoin.execute(&hr, &hs, &cfg).unwrap();
        let er = execution_report(&report, &cfg);
        assert_eq!(er.algorithm, "sort-merge");
        assert_eq!(er.io.total_ios, report.io.total_ios());
        assert_eq!(er.phases.len(), report.phases.len());
        assert_eq!(er.result.tuples, report.result_tuples);
        assert!(er.plan.is_none() && er.deviation.is_none());
        for (note, counter) in report.notes.iter().zip(&er.counters) {
            assert_eq!(
                (note.0.as_str(), note.1),
                (counter.name.as_str(), counter.value)
            );
        }
    }

    #[test]
    fn partition_conversion_attaches_plan_and_deviation() {
        let disk = SharedDisk::new(256);
        let hr = load(&disk, 60, 2400);
        let hs = load(&disk, 60, 2400);
        let cfg = JoinConfig::with_buffer(24);
        let (report, planner) = PartitionJoin::default()
            .execute_with_plan(&hr, &hs, &cfg)
            .unwrap();
        let er = partition_execution_report(&report, &cfg, &planner, hr.pages());
        let plan = er.plan.as_ref().expect("non-degenerate run has a plan");
        assert_eq!(plan.part_size, planner.plan.part_size);
        assert_eq!(plan.candidates.iter().filter(|c| c.chosen).count(), 1);
        assert!(er.phase("plan").unwrap().predicted_cost.is_some());
        assert_eq!(er.phase("partition").unwrap().predicted_cost, None);
        let dev = er.deviation.expect("deviation computed");
        assert_eq!(
            dev.actual_cost,
            er.phase("plan").unwrap().io.cost + er.phase("join").unwrap().io.cost
        );
    }

    #[test]
    fn degenerate_partition_run_has_no_plan_section() {
        let disk = SharedDisk::new(128);
        let hr = load(&disk, 10, 40); // fits in memory
        let hs = load(&disk, 10, 40);
        let cfg = JoinConfig::with_buffer(64);
        let (report, planner) = PartitionJoin::default()
            .execute_with_plan(&hr, &hs, &cfg)
            .unwrap();
        assert!(planner.candidates.is_empty());
        let er = partition_execution_report(&report, &cfg, &planner, hr.pages());
        assert!(er.plan.is_none());
        assert!(er.deviation.is_none());
    }
}
