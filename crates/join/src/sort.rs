//! External merge sort over heap files.
//!
//! The sort-merge baseline needs both relations sorted by valid-start time
//! (\[SG89\], \[LM90\] consider exactly such sort orders). The sorter here
//! is a classical two-phase external sort:
//!
//! 1. **Run formation** — read `M` pages at a time, sort in memory, write
//!    each run to its own contiguous file.
//! 2. **Merge** — repeatedly merge up to `M − 1` runs (one output page is
//!    reserved), giving each input run an equal share of the remaining
//!    buffer as its read-ahead. Small shares mean frequent refills, and
//!    every refill of a different run costs a random access — this is the
//!    "more runs with fewer pages in each run, with a random access
//!    required by each run" effect the paper blames for sort-merge's cost
//!    at small memory sizes (§4.2).
//!
//! Tuples are ordered by `(Vs, Ve, value-hash)` with input position as
//! the final tie-break — a deterministic total order whose primary key is
//! the valid-start chronon. The hash leg replaces the old full
//! `Vec<Value>` payload compare: the hot paths precompute one fixed-key
//! hash per tuple ([`sort_key`]) instead of paying an O(width) value walk
//! on every comparison, and stability (run formation is stable, the merge
//! heap tie-breaks on reader index) pins the order of hash-equal tuples.

use crate::common::{JoinError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use vtjoin_core::{Chronon, Schema, Tuple};
use vtjoin_storage::{HeapFile, HeapWriter, SharedDisk};

/// The precomputed external-sort key: `(Vs, Ve, value hash)`.
pub type SortKey = (Chronon, Chronon, u64);

/// Computes a tuple's [`SortKey`] once — valid-start, valid-end, and a
/// fixed-key SipHash over the payload values (deterministic across runs
/// and threads). Sorting by precomputed keys keeps `Vec<Value>` compares
/// off the sort's hot path entirely; hash-equal distinct payloads (a
/// vanishing fraction) stay in a stable, position-determined order.
pub fn sort_key(t: &Tuple) -> SortKey {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in t.values() {
        v.hash(&mut h);
    }
    (t.valid().start(), t.valid().end(), h.finish())
}

/// Total order used by the external sort: valid-start, then valid-end,
/// then the payload value hash. Convenience comparator for cold paths and
/// tests; the sorter itself precomputes [`sort_key`] per tuple rather
/// than re-hashing on every comparison.
pub fn by_valid_start(a: &Tuple, b: &Tuple) -> Ordering {
    sort_key(a).cmp(&sort_key(b))
}

/// Minimum buffer pages the sorter needs (2 inputs + 1 output during a
/// merge).
pub const MIN_SORT_BUFFER_PAGES: u64 = 3;

/// Externally sorts `input` by [`by_valid_start`] using at most
/// `buffer_pages` pages of memory, returning the sorted relation as a new
/// heap file on the same disk. All I/O is charged to the disk's counters.
pub fn external_sort(input: &HeapFile, buffer_pages: u64) -> Result<HeapFile> {
    if buffer_pages < MIN_SORT_BUFFER_PAGES {
        return Err(JoinError::InsufficientMemory {
            algorithm: "external-sort",
            needed: MIN_SORT_BUFFER_PAGES,
            available: buffer_pages,
        });
    }
    let disk = input.disk().clone();
    let schema = Arc::clone(input.schema());

    // ---- Phase 1: run formation -------------------------------------------------
    let mut runs: Vec<HeapFile> = Vec::new();
    {
        let mut reader = input.reader();
        loop {
            let mut block: Vec<Tuple> = Vec::new();
            let mut pages_read = 0;
            while pages_read < buffer_pages {
                match reader.next_page()? {
                    Some(page) => {
                        block.extend(page);
                        pages_read += 1;
                    }
                    None => break,
                }
            }
            if block.is_empty() {
                break;
            }
            // Stable + cached: one hash per tuple, no payload compares,
            // equal keys kept in input-position (row-id) order.
            block.sort_by_cached_key(sort_key);
            let mut w = HeapWriter::create(&disk, Arc::clone(&schema), pages_read + 1);
            for t in &block {
                w.push(t)?;
            }
            runs.push(w.finish()?);
            if pages_read < buffer_pages {
                break; // input exhausted
            }
        }
    }

    // ---- Phase 2: iterative k-way merges ---------------------------------------
    let fan_in = (buffer_pages - 1).max(2);
    while runs.len() > 1 {
        let mut next: Vec<HeapFile> = Vec::new();
        for group in runs.chunks(fan_in as usize) {
            next.push(merge_runs(&disk, &schema, group, buffer_pages)?);
        }
        runs = next;
    }

    match runs.pop() {
        Some(sorted) => Ok(sorted),
        None => {
            // Empty input: an empty heap file.
            let w = HeapWriter::create(&disk, schema, 0);
            Ok(w.finish()?)
        }
    }
}

/// Merges a group of sorted runs into one sorted run.
fn merge_runs(
    disk: &SharedDisk,
    schema: &Arc<Schema>,
    group: &[HeapFile],
    buffer_pages: u64,
) -> Result<HeapFile> {
    if group.len() == 1 {
        // Nothing to merge; reuse the run as-is (no I/O).
        return Ok(group[0].clone());
    }
    // One output page; the rest divided evenly as per-run read-ahead.
    let per_run = ((buffer_pages - 1) / group.len() as u64).max(1);
    let mut readers: Vec<RunReader<'_>> =
        group.iter().map(|r| RunReader::new(r, per_run)).collect();

    let total_pages: u64 = group.iter().map(HeapFile::pages).sum();
    let mut out = HeapWriter::create(disk, Arc::clone(schema), total_pages + 1);

    // Heap of (precomputed sort key, next tuple, reader index); BinaryHeap
    // is a max-heap so wrap with reversed ordering. The key is hashed once
    // as the tuple enters the heap — sift compares touch only the key.
    struct Entry(SortKey, Tuple, usize);
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0 && self.2 == other.2
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed for min-heap behaviour; tie-break on reader index
            // for determinism.
            other.0.cmp(&self.0).then(other.2.cmp(&self.2))
        }
    }

    let mut heap = BinaryHeap::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(t) = r.next()? {
            heap.push(Entry(sort_key(&t), t, i));
        }
    }
    while let Some(Entry(_, t, i)) = heap.pop() {
        out.push(&t)?;
        if let Some(nxt) = readers[i].next()? {
            heap.push(Entry(sort_key(&nxt), nxt, i));
        }
    }
    Ok(out.finish()?)
}

/// Buffered sequential reader over one run: refills `read_ahead`
/// consecutive pages at a time (1 random + `read_ahead − 1` sequential when
/// undisturbed).
struct RunReader<'a> {
    run: &'a HeapFile,
    next_page: u64,
    read_ahead: u64,
    buffer: std::collections::VecDeque<Tuple>,
}

impl<'a> RunReader<'a> {
    fn new(run: &'a HeapFile, read_ahead: u64) -> RunReader<'a> {
        RunReader {
            run,
            next_page: 0,
            read_ahead,
            buffer: std::collections::VecDeque::new(),
        }
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.buffer.is_empty() {
            let end = (self.next_page + self.read_ahead).min(self.run.pages());
            for p in self.next_page..end {
                self.buffer.extend(self.run.read_page(p)?);
            }
            self.next_page = end;
        }
        Ok(self.buffer.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtjoin_core::{AttrDef, AttrType, Interval, Relation, Value};
    use vtjoin_storage::SharedDisk;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![AttrDef::new("k", AttrType::Int)])
            .unwrap()
            .into_shared()
    }

    fn relation(n: i64) -> Relation {
        // Pseudo-shuffled starts.
        let tuples = (0..n)
            .map(|i| {
                let start = (i * 7919) % 1000;
                Tuple::new(
                    vec![Value::Int(i)],
                    Interval::from_raw(start, start + (i % 13)).unwrap(),
                )
            })
            .collect();
        Relation::from_parts_unchecked(schema(), tuples)
    }

    fn assert_sorted(heap: &HeapFile) {
        let rel = heap.read_all().unwrap();
        for w in rel.tuples().windows(2) {
            assert_ne!(by_valid_start(&w[0], &w[1]), Ordering::Greater);
        }
    }

    #[test]
    fn sorts_and_preserves_multiset() {
        let disk = SharedDisk::new(256);
        let r = relation(200);
        let heap = HeapFile::bulk_load(&disk, &r).unwrap();
        for buffer in [3u64, 4, 8, 64] {
            let sorted = external_sort(&heap, buffer).unwrap();
            assert_eq!(sorted.tuples(), heap.tuples());
            assert_sorted(&sorted);
            assert!(
                sorted.read_all().unwrap().multiset_eq(&r),
                "buffer {buffer}"
            );
        }
    }

    #[test]
    fn single_run_when_input_fits() {
        let disk = SharedDisk::new(256);
        let heap = HeapFile::bulk_load(&disk, &relation(40)).unwrap();
        let pages = heap.pages();
        disk.reset_stats();
        let sorted = external_sort(&heap, pages + 1).unwrap();
        let s = disk.stats();
        assert_sorted(&sorted);
        // One read pass + one write pass, no merge.
        assert_eq!(s.random_reads + s.seq_reads, pages);
        assert_eq!(s.random_writes + s.seq_writes, sorted.pages());
    }

    #[test]
    fn multi_pass_merge_with_tiny_buffer() {
        let disk = SharedDisk::new(128);
        let r = relation(300);
        let heap = HeapFile::bulk_load(&disk, &r).unwrap();
        // buffer 3 → runs of 3 pages, fan-in 2 → several merge passes.
        let sorted = external_sort(&heap, 3).unwrap();
        assert_sorted(&sorted);
        assert!(sorted.read_all().unwrap().multiset_eq(&r));
    }

    #[test]
    fn merge_io_grows_as_memory_shrinks() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(600)).unwrap();
        let mut costs = Vec::new();
        for buffer in [4u64, 16, 200] {
            disk.reset_stats();
            let _ = external_sort(&heap, buffer).unwrap();
            costs.push(disk.stats().cost(vtjoin_storage::CostRatio::R5));
        }
        assert!(
            costs[0] > costs[1],
            "4-page sort {} !> 16-page {}",
            costs[0],
            costs[1]
        );
        assert!(
            costs[1] > costs[2],
            "16-page sort {} !> 200-page {}",
            costs[1],
            costs[2]
        );
    }

    #[test]
    fn empty_input() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &Relation::empty(schema())).unwrap();
        let sorted = external_sort(&heap, 4).unwrap();
        assert_eq!(sorted.tuples(), 0);
        assert_eq!(sorted.pages(), 0);
    }

    #[test]
    fn rejects_tiny_buffer() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(10)).unwrap();
        assert!(matches!(
            external_sort(&heap, 2),
            Err(JoinError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn hash_tiebreak_is_deterministic_across_buffer_sizes() {
        // Many distinct payloads sharing one (Vs, Ve): the hash leg must
        // impose the same total order whatever the run/merge geometry,
        // with no payload compares anywhere on the sort path.
        let disk = SharedDisk::new(128);
        let tuples: Vec<Tuple> = (0..60)
            .map(|i| Tuple::new(vec![Value::Int(i)], Interval::from_raw(5, 5).unwrap()))
            .collect();
        let rel = Relation::from_parts_unchecked(schema(), tuples);
        let heap = HeapFile::bulk_load(&disk, &rel).unwrap();
        let baseline = external_sort(&heap, 64).unwrap().read_all().unwrap();
        for buffer in [3u64, 4, 7] {
            let got = external_sort(&heap, buffer).unwrap().read_all().unwrap();
            assert_eq!(got.tuples(), baseline.tuples(), "buffer {buffer}");
        }
        assert_sorted(&external_sort(&heap, 3).unwrap());
    }

    #[test]
    fn sort_is_stable_under_duplicates() {
        let disk = SharedDisk::new(128);
        let dup = Tuple::new(vec![Value::Int(1)], Interval::from_raw(5, 5).unwrap());
        let rel = Relation::from_parts_unchecked(schema(), vec![dup.clone(); 20]);
        let heap = HeapFile::bulk_load(&disk, &rel).unwrap();
        let sorted = external_sort(&heap, 3).unwrap();
        assert_eq!(sorted.tuples(), 20);
        assert!(sorted.read_all().unwrap().multiset_eq(&rel));
    }
}
