//! Sort-merge evaluation with *backing up* — the paper's main baseline.
//!
//! Both relations are externally sorted by valid-start time, then merged.
//! Matching a temporal join over a valid-start order is harder than the
//! snapshot case: an outer tuple `x` may overlap inner tuples whose pages
//! were already consumed, because a **long-lived** inner tuple with an
//! early `Vs` stays valid arbitrarily long. Whenever such tuples have
//! fallen out of the in-memory window, their pages must be **re-read**
//! ("backing up", §4.3); a single long-lived inner tuple already forces
//! backups, and higher densities force more — the behaviour Figure 7
//! measures.
//!
//! The merge is blocked to make best use of the available memory, as §4.1
//! says the paper's own sort-merge was: half the buffer holds a block of
//! the outer relation, the other half is an LRU window over recently read
//! inner pages. Per outer block the inner relation is scanned from the
//! left *fence* (the first page that can still contain a live tuple) to
//! the last page whose smallest `Vs` can reach the block; per-page
//! valid-time **zone maps** (free catalog metadata maintained by the heap
//! writer) let the scan skip pages containing no live tuples, so backup
//! I/O is proportional to the number of pages actually holding long-lived
//! tuples — re-read once per outer block that needs them.

use crate::common::{
    BlockTable, CpuCounters, JoinAlgorithm, JoinConfig, JoinError, JoinReport, JoinSpec,
    PhaseTracker, Result, ResultSink,
};
use crate::sort::external_sort;
use std::collections::HashMap;
use std::sync::Arc;
use vtjoin_core::Tuple;
use vtjoin_storage::HeapFile;

/// Sort-merge valid-time natural join with backing up.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortMergeJoin;

impl SortMergeJoin {
    /// Minimum workable buffer: external sort needs 3 pages; the merge
    /// needs 1 outer block page + 1 inner window page + 1 spare.
    pub const MIN_BUFFER_PAGES: u64 = 3;
}

impl JoinAlgorithm for SortMergeJoin {
    fn name(&self) -> &'static str {
        "sort-merge"
    }

    fn execute(&self, outer: &HeapFile, inner: &HeapFile, cfg: &JoinConfig) -> Result<JoinReport> {
        if cfg.buffer_pages < Self::MIN_BUFFER_PAGES {
            return Err(JoinError::InsufficientMemory {
                algorithm: self.name(),
                needed: Self::MIN_BUFFER_PAGES,
                available: cfg.buffer_pages,
            });
        }
        if !cfg.predicate.is_natural() {
            return Err(JoinError::Precondition(
                "sort-merge evaluates only the natural (intersection) predicate; its \
                 backing-up merge window assumes overlap matches — use nested-loop or \
                 the parallel executor for generalized predicates",
            ));
        }
        cfg.require_inner()?;
        let spec = JoinSpec::natural(outer.schema(), inner.schema())?;
        let disk = outer.disk().clone();
        let mut tracker = PhaseTracker::start(&disk);
        let mut sink = ResultSink::new(
            Arc::clone(spec.out_schema()),
            disk.page_size(),
            cfg.collect_result,
        );

        let sorted_r = external_sort(outer, cfg.buffer_pages)?;
        tracker.phase("sort-outer");
        let sorted_s = external_sort(inner, cfg.buffer_pages)?;
        tracker.phase("sort-inner");

        let (backups, cpu) = merge_join(&sorted_r, &sorted_s, &spec, cfg.buffer_pages, &mut sink)?;
        tracker.phase("merge");

        let faults = tracker.fault_summary(0);
        let (io, phases) = tracker.finish();
        let (result_tuples, result_pages, result) = sink.finish();
        Ok(JoinReport {
            algorithm: self.name(),
            result_tuples,
            result_pages,
            io,
            phases,
            result,
            notes: {
                let mut notes = vec![("backup_page_rereads".to_string(), backups)];
                notes.extend(cpu.notes());
                notes
            },
            faults,
        })
    }
}

/// The blocked backing-up merge. Returns the number of inner-page
/// re-reads (pages read more than once), the direct measure of backup
/// cost.
fn merge_join(
    sorted_r: &HeapFile,
    sorted_s: &HeapFile,
    spec: &JoinSpec,
    buffer_pages: u64,
    sink: &mut ResultSink,
) -> Result<(i64, CpuCounters)> {
    let mut cpu = CpuCounters::default();
    if sorted_r.tuples() == 0 || sorted_s.tuples() == 0 {
        return Ok((0, cpu));
    }
    // Split the buffer: half for the outer block, half for the inner
    // window (one page spare for the streaming bookkeeping).
    let usable = (buffer_pages - 1).max(2);
    let block_pages = (usable / 2).max(1);
    let window_pages = (usable - block_pages).max(1) as usize;
    let mut window = Window::new(sorted_s, window_pages);

    let s_pages = sorted_s.pages();
    // Left fence at page granularity: the first inner page whose zone can
    // still contain a live tuple. Monotone — block minimum Vs only grows.
    let mut fence: u64 = 0;

    let mut next_outer = 0u64;
    while next_outer < sorted_r.pages() {
        // Read the outer block.
        let block_end = (next_outer + block_pages).min(sorted_r.pages());
        let mut block: Vec<Tuple> = Vec::new();
        for p in next_outer..block_end {
            block.extend(sorted_r.read_page(p)?);
        }
        next_outer = block_end;
        if block.is_empty() {
            continue;
        }
        let block_min_vs = block[0].valid().start();
        let block_max_ve = block
            .iter()
            .map(|t| t.valid().end())
            .max()
            .expect("non-empty block");

        // Advance the fence past pages that are dead for this and every
        // future block (zone consultation is free catalog access).
        while fence < s_pages && sorted_s.page_zone(fence).max_end < block_min_vs {
            fence += 1;
        }
        // Last inner page that can reach the block: zones' min_start is
        // non-decreasing in a file sorted by Vs, so binary search.
        let hi = partition_point_pages(sorted_s, |z| z.min_start <= block_max_ve);

        let table = BlockTable::build(spec, &block);
        for p in fence..hi {
            let zone = sorted_s.page_zone(p);
            if zone.max_end < block_min_vs {
                continue; // no live tuple on this page — skip (zone map)
            }
            for y in window.page(p)? {
                table.probe(y, sink, |_| true);
            }
        }
        cpu.absorb(&table);
    }
    Ok((window.rereads(), cpu))
}

/// Number of leading pages of `heap` whose zone satisfies `pred`
/// (predicate must be monotone over the sorted file).
fn partition_point_pages(
    heap: &HeapFile,
    pred: impl Fn(vtjoin_storage::heap::PageZone) -> bool,
) -> u64 {
    let (mut lo, mut hi) = (0u64, heap.pages());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(heap.page_zone(mid)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// LRU cache of decoded inner pages with re-read accounting.
struct Window<'a> {
    heap: &'a HeapFile,
    capacity: usize,
    pages: HashMap<u64, (Vec<Tuple>, u64)>, // page -> (tuples, last-used tick)
    tick: u64,
    ever_read: std::collections::HashSet<u64>,
    rereads: i64,
}

impl<'a> Window<'a> {
    fn new(heap: &'a HeapFile, capacity: usize) -> Window<'a> {
        Window {
            heap,
            capacity,
            pages: HashMap::new(),
            tick: 0,
            ever_read: std::collections::HashSet::new(),
            rereads: 0,
        }
    }

    /// The decoded tuples of inner page `p`, reading (and charging) on a
    /// window miss.
    fn page(&mut self, p: u64) -> Result<&[Tuple]> {
        if !self.pages.contains_key(&p) {
            if self.pages.len() >= self.capacity {
                let victim = *self
                    .pages
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(page, _)| page)
                    .expect("non-empty cache");
                self.pages.remove(&victim);
            }
            let tuples = self.heap.read_page(p)?;
            if !self.ever_read.insert(p) {
                self.rereads += 1;
            }
            self.pages.insert(p, (tuples, self.tick));
        }
        self.tick += 1;
        let entry = self.pages.get_mut(&p).expect("resident");
        entry.1 = self.tick;
        Ok(&entry.0)
    }

    fn rereads(&self) -> i64 {
        self.rereads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtjoin_core::algebra::natural_join;
    use vtjoin_core::{AttrDef, AttrType, Interval, Relation, Schema, Value};
    use vtjoin_storage::SharedDisk;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        (
            Schema::new(vec![
                AttrDef::new("k", AttrType::Int),
                AttrDef::new("b", AttrType::Int),
            ])
            .unwrap()
            .into_shared(),
            Schema::new(vec![
                AttrDef::new("k", AttrType::Int),
                AttrDef::new("c", AttrType::Int),
            ])
            .unwrap()
            .into_shared(),
        )
    }

    fn mixed_relations(n: i64, keys: i64, long_lived_every: i64) -> (Relation, Relation) {
        let (rs, ss) = schemas();
        let mk = |is_r: bool| {
            (0..n)
                .map(|i| {
                    let base = if is_r { i * 13 % 500 } else { i * 17 % 500 };
                    let iv = if long_lived_every > 0 && i % long_lived_every == 0 {
                        Interval::from_raw(base % 250, base % 250 + 250).unwrap()
                    } else {
                        Interval::from_raw(base, base).unwrap()
                    };
                    Tuple::new(vec![Value::Int(i % keys), Value::Int(i)], iv)
                })
                .collect()
        };
        (
            Relation::from_parts_unchecked(rs, mk(true)),
            Relation::from_parts_unchecked(ss, mk(false)),
        )
    }

    fn check_against_oracle(n: i64, keys: i64, ll: i64, buffer: u64) {
        let disk = SharedDisk::new(256);
        let (r, s) = mixed_relations(n, keys, ll);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = SortMergeJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(buffer).collecting())
            .unwrap();
        let expected = natural_join(&r, &s).unwrap();
        let got = report.result.as_ref().unwrap();
        assert!(
            got.multiset_eq(&expected),
            "n={n} keys={keys} ll={ll} buffer={buffer}: got {} want {} diff {:?}",
            got.len(),
            expected.len(),
            got.multiset_diff(&expected).len()
        );
    }

    #[test]
    fn matches_oracle_without_long_lived() {
        check_against_oracle(150, 5, 0, 8);
    }

    #[test]
    fn matches_oracle_with_long_lived() {
        check_against_oracle(150, 5, 10, 8);
        check_against_oracle(150, 5, 3, 4);
    }

    #[test]
    fn matches_oracle_with_tight_window() {
        // Window of one page forces constant backing up; result unchanged.
        check_against_oracle(120, 4, 4, 3);
    }

    #[test]
    fn long_lived_tuples_cause_backups() {
        let disk = SharedDisk::new(256);
        let (r0, s0) = mixed_relations(300, 5, 0);
        let (r1, s1) = mixed_relations(300, 5, 5);
        let cfg = JoinConfig::with_buffer(6);

        let h = |rel| HeapFile::bulk_load(&disk, rel).unwrap();
        let rep0 = SortMergeJoin.execute(&h(&r0), &h(&s0), &cfg).unwrap();
        let rep1 = SortMergeJoin.execute(&h(&r1), &h(&s1), &cfg).unwrap();
        let b0 = rep0.note("backup_page_rereads").unwrap();
        let b1 = rep1.note("backup_page_rereads").unwrap();
        assert!(
            b1 > b0,
            "long-lived workload must back up more: {b1} !> {b0}"
        );
        assert!(
            rep1.io.total_ios() > rep0.io.total_ios(),
            "backups must show up in measured I/O"
        );
    }

    #[test]
    fn phases_are_reported() {
        let disk = SharedDisk::new(256);
        let (r, s) = mixed_relations(50, 3, 0);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = SortMergeJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(8))
            .unwrap();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["sort-outer", "sort-inner", "merge"]);
        let sum = report
            .phases
            .iter()
            .fold(vtjoin_storage::IoStats::ZERO, |acc, p| acc + p.io);
        assert_eq!(sum, report.io, "phases partition total I/O");
    }

    #[test]
    fn empty_inputs() {
        let disk = SharedDisk::new(256);
        let (rs, _) = schemas();
        let (_, s) = mixed_relations(30, 2, 0);
        let hr = HeapFile::bulk_load(&disk, &Relation::empty(rs)).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = SortMergeJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(4).collecting())
            .unwrap();
        assert_eq!(report.result_tuples, 0);
    }

    #[test]
    fn rejects_tiny_buffers() {
        let disk = SharedDisk::new(256);
        let (r, s) = mixed_relations(10, 2, 0);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        assert!(matches!(
            SortMergeJoin.execute(&hr, &hs, &JoinConfig::with_buffer(2)),
            Err(JoinError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn fence_is_exact_on_adjacent_intervals() {
        // Regression guard: an inner tuple ending exactly one chronon
        // before an outer start must be fenced out, one ending exactly at
        // the start must not.
        let (rs, ss) = schemas();
        let r = Relation::from_parts_unchecked(
            rs,
            vec![Tuple::new(
                vec![Value::Int(1), Value::Int(0)],
                Interval::from_raw(10, 12).unwrap(),
            )],
        );
        let s = Relation::from_parts_unchecked(
            ss,
            vec![
                Tuple::new(
                    vec![Value::Int(1), Value::Int(0)],
                    Interval::from_raw(0, 9).unwrap(),
                ),
                Tuple::new(
                    vec![Value::Int(1), Value::Int(1)],
                    Interval::from_raw(0, 10).unwrap(),
                ),
            ],
        );
        let disk = SharedDisk::new(256);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = SortMergeJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(4).collecting())
            .unwrap();
        let got = report.result.unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got.tuples()[0].valid(), Interval::from_raw(10, 10).unwrap());
    }
}
