//! A disk-resident valid-time index and the index join built on it — the
//! **append-only tree** school of temporal join evaluation (\[SG89\],
//! \[GS91\]) that the paper positions itself against (§4.1).
//!
//! Gunadhi & Segev assume temporal relations are *append-only*: tuples
//! arrive in timestamp order, so the relation is physically sorted by
//! `Vs` and a balanced tree over it serves as a temporal index. The
//! structure here is that tree, built bottom-up over a sorted heap file:
//! leaf entries describe heap pages (`first Vs`, `max Ve`), interior
//! entries summarize child index pages, every level augmented with the
//! subtree's maximum ending chronon — making stabbing/overlap queries
//! prunable on both sides, like an interval tree.
//!
//! [`TimeIndexJoin`] evaluates the valid-time natural join by scanning
//! the outer relation and, per outer page, descending the index to fetch
//! exactly the inner pages that can contain overlapping tuples. Every
//! index page is a real on-disk page: building it costs writes, probing
//! it costs reads (upper levels are cached in a configurable number of
//! buffer pages, as any real system would pin them). The paper's point —
//! that the partition join needs *no* such auxiliary structure with its
//! "additional update costs" — becomes measurable: compare
//! `build_io + join_io` here against the partition join's single figure.

use crate::common::{
    BlockTable, JoinAlgorithm, JoinConfig, JoinError, JoinReport, JoinSpec, PhaseTracker, Result,
    ResultSink,
};
use crate::sort::external_sort;
use std::collections::HashMap;
use std::sync::Arc;
use vtjoin_core::{Interval, Tuple};
use vtjoin_storage::{FileHandle, HeapFile, SharedDisk};

/// Bytes per index entry: `vs` (8) + `max_ve` (8) + child page number (8).
const ENTRY_BYTES: usize = 24;

/// One index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Smallest starting chronon in the subtree (subtrees are Vs-ordered).
    vs: i64,
    /// Largest ending chronon in the subtree (the interval-tree
    /// augmentation).
    max_ve: i64,
    /// Heap page number (level 0) or index page number (levels ≥ 1).
    child: u64,
}

fn encode_entries(entries: &[Entry], page_size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + entries.len() * ENTRY_BYTES);
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.vs.to_le_bytes());
        out.extend_from_slice(&e.max_ve.to_le_bytes());
        out.extend_from_slice(&e.child.to_le_bytes());
    }
    debug_assert!(out.len() <= page_size);
    out
}

fn decode_entries(bytes: &[u8]) -> Vec<Entry> {
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let off = 2 + i * ENTRY_BYTES;
        let get = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off + o..off + o + 8]);
            b
        };
        out.push(Entry {
            vs: i64::from_le_bytes(get(0)),
            max_ve: i64::from_le_bytes(get(8)),
            child: u64::from_le_bytes(get(16)),
        });
    }
    out
}

/// A disk-resident append-only-tree index over a `Vs`-sorted heap file.
#[derive(Debug)]
pub struct TimeIndex {
    file: FileHandle,
    /// `levels[l]` = (first page index within `file`, page count) of level
    /// `l`; level 0 summarizes heap pages, the last level is the root.
    levels: Vec<(u64, u64)>,
    fanout: usize,
}

impl TimeIndex {
    /// Builds the index bottom-up over `sorted` (must be sorted by `Vs`),
    /// charging one write per index page. The build consults only the
    /// heap's catalog metadata (page zones), not the heap pages
    /// themselves — exactly what an append-only system maintains as it
    /// goes.
    pub fn build(disk: &SharedDisk, sorted: &HeapFile) -> Result<TimeIndex> {
        let page_size = disk.page_size();
        let fanout = ((page_size - 2) / ENTRY_BYTES).max(2);
        // Conservative capacity: geometric series over the fanout.
        let mut cap = 2u64;
        let mut level_pages = sorted.pages().div_ceil(fanout as u64).max(1);
        loop {
            cap += level_pages;
            if level_pages <= 1 {
                break;
            }
            level_pages = level_pages.div_ceil(fanout as u64);
        }
        let mut file = FileHandle::create(disk, cap + 1);

        // Level 0 entries from the heap's zone maps. The probe's early
        // exit depends on Vs order; the zone maps let us verify the
        // append-only precondition without reading a single heap page.
        let mut entries: Vec<Entry> = (0..sorted.pages())
            .map(|p| {
                let z = sorted.page_zone(p);
                Entry {
                    vs: z.min_start.value(),
                    max_ve: z.max_end.value(),
                    child: p,
                }
            })
            .collect();
        if entries.windows(2).any(|w| w[1].vs < w[0].vs) {
            return Err(crate::common::JoinError::Precondition(
                "time index requires the relation in valid-start (append) order",
            ));
        }
        if entries.is_empty() {
            // Empty relation: a single empty root level.
            let page = encode_entries(&[], page_size);
            file.append(page)?;
            return Ok(TimeIndex {
                file,
                levels: vec![(0, 1)],
                fanout,
            });
        }

        let mut levels = Vec::new();
        loop {
            let first_page = file.len();
            let mut next_entries = Vec::with_capacity(entries.len().div_ceil(fanout));
            for chunk in entries.chunks(fanout) {
                let page_no = file.len();
                file.append(encode_entries(chunk, page_size))?;
                next_entries.push(Entry {
                    vs: chunk[0].vs,
                    max_ve: chunk.iter().map(|e| e.max_ve).max().expect("non-empty"),
                    child: page_no,
                });
            }
            levels.push((first_page, file.len() - first_page));
            if next_entries.len() <= 1 {
                break;
            }
            entries = next_entries;
        }
        Ok(TimeIndex {
            file,
            levels,
            fanout,
        })
    }

    /// Number of index pages (the structure's storage cost).
    pub fn pages(&self) -> u64 {
        self.file.len()
    }

    /// Tree height (levels above the heap pages).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Maximum entries per index page.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Physical page index of the root within the index file.
    fn root_page(&self) -> u64 {
        let (first, count) = *self.levels.last().expect("at least one level");
        debug_assert_eq!(count, 1);
        first
    }

    /// Collects the heap pages whose subtree can contain a tuple
    /// overlapping `window`, in ascending order. Index-page reads are
    /// charged unless served by `cache` (the pinned upper levels).
    pub fn probe(&self, window: Interval, cache: &mut IndexCache) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.walk(
            self.root_page(),
            self.levels.len() - 1,
            window,
            cache,
            &mut out,
        )?;
        Ok(out)
    }

    fn walk(
        &self,
        page: u64,
        level: usize,
        window: Interval,
        cache: &mut IndexCache,
        out: &mut Vec<u64>,
    ) -> Result<()> {
        let entries = cache.read(&self.file, page)?;
        for (i, e) in entries.iter().enumerate() {
            // Subtree Vs range starts at e.vs; everything in it has
            // Vs ≥ e.vs, so once e.vs exceeds the window we can stop —
            // entries are Vs-ordered.
            if e.vs > window.end().value() {
                break;
            }
            // Interval-tree pruning: no tuple below ends late enough.
            if e.max_ve < window.start().value() {
                continue;
            }
            let _ = i;
            if level == 0 {
                out.push(e.child);
            } else {
                self.walk(e.child, level - 1, window, cache, out)?;
            }
        }
        Ok(())
    }
}

/// A pinned cache for index pages: the upper levels of a B-tree-like
/// structure are pinned by every real system; `capacity` bounds how many
/// index pages stay resident (0 = every probe pays full I/O).
#[derive(Debug)]
pub struct IndexCache {
    capacity: usize,
    pages: HashMap<u64, Vec<Entry>>,
    /// Charged index-page reads (diagnostics).
    pub reads: u64,
}

impl IndexCache {
    /// A cache holding at most `capacity` index pages.
    pub fn new(capacity: usize) -> IndexCache {
        IndexCache {
            capacity,
            pages: HashMap::new(),
            reads: 0,
        }
    }

    fn read(&mut self, file: &FileHandle, page: u64) -> Result<Vec<Entry>> {
        if let Some(e) = self.pages.get(&page) {
            return Ok(e.clone());
        }
        let bytes = file.read(page)?;
        self.reads += 1;
        let entries = decode_entries(&bytes);
        if self.pages.len() < self.capacity {
            self.pages.insert(page, entries.clone());
        }
        Ok(entries)
    }
}

/// Valid-time natural join via the append-only tree: sort both relations
/// (unless they are already append-only), build the index over the inner,
/// then stream the outer in blocks probing the index. Sorting the outer
/// matters as much as the index itself: only a `Vs`-ordered outer gives
/// each block a tight hull for the index to prune against.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeIndexJoin {
    /// When true, both relations are assumed to already be in `Vs` order
    /// (the append-only world of \[SG89\]): no sorting is charged. When
    /// false, the inputs are sorted first — the fair one-shot comparison
    /// against the sort-free partition join.
    pub assume_sorted: bool,
}

impl TimeIndexJoin {
    /// Minimum buffer pages: 1 outer + 1 inner + 1 result + 1 index.
    pub const MIN_BUFFER_PAGES: u64 = 4;
}

impl JoinAlgorithm for TimeIndexJoin {
    fn name(&self) -> &'static str {
        "time-index"
    }

    fn execute(&self, outer: &HeapFile, inner: &HeapFile, cfg: &JoinConfig) -> Result<JoinReport> {
        if cfg.buffer_pages < Self::MIN_BUFFER_PAGES {
            return Err(JoinError::InsufficientMemory {
                algorithm: self.name(),
                needed: Self::MIN_BUFFER_PAGES,
                available: cfg.buffer_pages,
            });
        }
        if !cfg.predicate.is_natural() {
            return Err(JoinError::Precondition(
                "time-index evaluates only the natural (intersection) predicate; its \
                 index probe window is the outer hull's overlap — use nested-loop or \
                 the parallel executor for generalized predicates",
            ));
        }
        cfg.require_inner()?;
        let spec = JoinSpec::natural(outer.schema(), inner.schema())?;
        let disk = outer.disk().clone();
        let mut tracker = PhaseTracker::start(&disk);
        let mut sink = ResultSink::new(
            Arc::clone(spec.out_schema()),
            disk.page_size(),
            cfg.collect_result,
        );

        // Prepare both sides: Vs order everywhere, index over the inner.
        let (sorted_outer, sorted_inner);
        let (outer_ref, inner_ref) = if self.assume_sorted {
            (outer, inner)
        } else {
            sorted_outer = external_sort(outer, cfg.buffer_pages)?;
            sorted_inner = external_sort(inner, cfg.buffer_pages)?;
            (&sorted_outer, &sorted_inner)
        };
        tracker.phase("sort");
        let index = TimeIndex::build(&disk, inner_ref)?;
        tracker.phase("build-index");

        // Buffer layout: an outer block and an inner window split the
        // buffer (minus one result page and the pinned index levels) —
        // blocked processing, like the sort-merge baseline, so that under
        // long-lived tuples the live inner region is re-read once per
        // *block* rather than once per outer page.
        let spare = cfg.buffer_pages - 2;
        let index_cache_pages = (spare / 4).clamp(1, index.pages().max(1));
        let usable = (spare - index_cache_pages).max(2);
        let block_pages = (usable / 2).max(1);
        let window_pages = (usable - block_pages).max(1) as usize;
        let mut cache = IndexCache::new(index_cache_pages as usize);
        let mut window: HashMap<u64, (Vec<Tuple>, u64)> = HashMap::new();
        let mut tick = 0u64;
        let mut inner_page_reads = 0i64;
        let mut cpu = crate::common::CpuCounters::default();

        let mut next_outer = 0u64;
        while next_outer < outer_ref.pages() {
            let block_end = (next_outer + block_pages).min(outer_ref.pages());
            let mut block: Vec<Tuple> = Vec::new();
            for op in next_outer..block_end {
                block.extend(outer_ref.read_page(op)?);
            }
            next_outer = block_end;
            if block.is_empty() {
                continue;
            }
            let hull = block
                .iter()
                .map(Tuple::valid)
                .reduce(|a, b| a.span(b))
                .expect("non-empty");
            let table = BlockTable::build(&spec, &block);
            for page in index.probe(hull, &mut cache)? {
                if !window.contains_key(&page) {
                    if window.len() >= window_pages {
                        let victim = *window
                            .iter()
                            .min_by_key(|(_, (_, used))| *used)
                            .map(|(p, _)| p)
                            .expect("non-empty window");
                        window.remove(&victim);
                    }
                    window.insert(page, (inner_ref.read_page(page)?, tick));
                    inner_page_reads += 1;
                }
                tick += 1;
                let entry = window.get_mut(&page).expect("resident");
                entry.1 = tick;
                for y in &entry.0 {
                    table.probe(y, &mut sink, |_| true);
                }
            }
            cpu.absorb(&table);
        }
        tracker.phase("probe");

        let faults = tracker.fault_summary(0);
        let (io, phases) = tracker.finish();
        let (result_tuples, result_pages, result) = sink.finish();
        Ok(JoinReport {
            algorithm: self.name(),
            result_tuples,
            result_pages,
            io,
            phases,
            result,
            notes: {
                let mut notes = vec![
                    ("index_pages".to_string(), index.pages() as i64),
                    ("index_height".to_string(), index.height() as i64),
                    ("index_page_reads".to_string(), cache.reads as i64),
                    ("inner_page_reads".to_string(), inner_page_reads),
                ];
                notes.extend(cpu.notes());
                notes
            },
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtjoin_core::algebra::natural_join;
    use vtjoin_core::{AttrDef, AttrType, Relation, Schema, Value};

    fn schema(b: &str) -> Arc<Schema> {
        Schema::new(vec![
            AttrDef::new("k", AttrType::Int),
            AttrDef::new(b, AttrType::Int),
        ])
        .unwrap()
        .into_shared()
    }

    fn rel(b: &str, n: i64, long_every: i64, sorted: bool) -> Relation {
        let mut tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                let start = (i * 37) % 900;
                let iv = if long_every > 0 && i % long_every == 0 {
                    Interval::from_raw(start % 450, start % 450 + 450).unwrap()
                } else {
                    Interval::from_raw(start, start + i % 4).unwrap()
                };
                Tuple::new(vec![Value::Int(i % 7), Value::Int(i)], iv)
            })
            .collect();
        if sorted {
            tuples.sort_by(crate::sort::by_valid_start);
        }
        Relation::from_parts_unchecked(schema(b), tuples)
    }

    fn heap(disk: &SharedDisk, r: &Relation) -> HeapFile {
        HeapFile::bulk_load(disk, r).unwrap()
    }

    #[test]
    fn index_build_structure() {
        let disk = SharedDisk::new(256);
        let h = heap(&disk, &rel("b", 400, 0, true));
        let idx = TimeIndex::build(&disk, &h).unwrap();
        // 256-byte pages → fanout (254/24) = 10.
        assert_eq!(idx.fanout(), 10);
        assert!(idx.height() >= 2, "height {}", idx.height());
        // Storage: roughly pages/fanout at level 0.
        assert!(idx.pages() >= h.pages() / 10);
        assert!(idx.pages() < h.pages());
    }

    #[test]
    fn probe_finds_exactly_the_live_pages() {
        let disk = SharedDisk::new(256);
        let h = heap(&disk, &rel("b", 400, 5, true));
        let idx = TimeIndex::build(&disk, &h).unwrap();
        let mut cache = IndexCache::new(64);
        for (ws, we) in [(0i64, 0i64), (100, 150), (890, 905), (0, 2000)] {
            let window = Interval::from_raw(ws, we).unwrap();
            let got = idx.probe(window, &mut cache).unwrap();
            // Reference: pages whose zone overlaps the window.
            let want: Vec<u64> = (0..h.pages())
                .filter(|&p| {
                    let z = h.page_zone(p);
                    z.min_start.value() <= we && z.max_end.value() >= ws
                })
                .collect();
            assert_eq!(got, want, "window [{ws},{we}]");
        }
    }

    #[test]
    fn probe_on_empty_relation() {
        let disk = SharedDisk::new(256);
        let h = heap(&disk, &Relation::empty(schema("b")));
        let idx = TimeIndex::build(&disk, &h).unwrap();
        let mut cache = IndexCache::new(4);
        assert!(idx
            .probe(Interval::from_raw(0, 100).unwrap(), &mut cache)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_join_matches_oracle() {
        let disk = SharedDisk::new(256);
        let r = rel("b", 300, 6, false);
        let s = rel("c", 300, 4, false);
        let hr = heap(&disk, &r);
        let hs = heap(&disk, &s);
        let report = TimeIndexJoin::default()
            .execute(&hr, &hs, &JoinConfig::with_buffer(16).collecting())
            .unwrap();
        let want = natural_join(&r, &s).unwrap();
        assert!(
            report.result.as_ref().unwrap().multiset_eq(&want),
            "got {} want {}",
            report.result_tuples,
            want.len()
        );
        assert!(report.note("index_pages").unwrap() > 0);
    }

    #[test]
    fn assume_sorted_skips_the_sort() {
        let disk = SharedDisk::new(256);
        let r = rel("b", 300, 6, true);
        let s = rel("c", 300, 4, true);
        let hr = heap(&disk, &r);
        let hs = heap(&disk, &s);
        let cfg = JoinConfig::with_buffer(16).collecting();
        let one_shot = TimeIndexJoin {
            assume_sorted: false,
        }
        .execute(&hr, &hs, &cfg)
        .unwrap();
        let appendonly = TimeIndexJoin {
            assume_sorted: true,
        }
        .execute(&hr, &hs, &cfg)
        .unwrap();
        assert!(one_shot
            .result
            .as_ref()
            .unwrap()
            .multiset_eq(appendonly.result.as_ref().unwrap()));
        let sort_io = |r: &JoinReport| {
            r.phases
                .iter()
                .find(|p| p.name == "sort")
                .map(|p| p.io.total_ios())
                .unwrap_or(0)
        };
        assert_eq!(sort_io(&appendonly), 0, "append-only pays no sort");
        assert!(sort_io(&one_shot) > 0);
        assert!(appendonly.io.total_ios() < one_shot.io.total_ios());
    }

    #[test]
    fn index_prunes_on_selective_outer() {
        // A tiny outer relation confined to a narrow window must read only
        // a sliver of the (indexed) inner relation.
        let disk = SharedDisk::new(256);
        let outer = Relation::from_parts_unchecked(
            schema("b"),
            vec![Tuple::new(
                vec![Value::Int(1), Value::Int(0)],
                Interval::from_raw(100, 110).unwrap(),
            )],
        );
        let s = rel("c", 800, 0, true); // no long-lived: narrow zones
        let hr = heap(&disk, &outer);
        let hs = heap(&disk, &s);
        let report = TimeIndexJoin {
            assume_sorted: true,
        }
        .execute(&hr, &hs, &JoinConfig::with_buffer(16))
        .unwrap();
        let inner_reads = report.note("inner_page_reads").unwrap();
        assert!(
            (inner_reads as u64) < hs.pages() / 4,
            "index should prune most of the inner: read {inner_reads} of {}",
            hs.pages()
        );
    }

    #[test]
    fn build_rejects_unsorted_input() {
        let disk = SharedDisk::new(256);
        let h = heap(&disk, &rel("b", 200, 0, false)); // unsorted
        assert!(matches!(
            TimeIndex::build(&disk, &h),
            Err(crate::common::JoinError::Precondition(_))
        ));
        // …and therefore the append-only join fails loudly instead of
        // returning a silently wrong answer.
        let s = rel("c", 200, 0, false);
        let hs = heap(&disk, &s);
        assert!(TimeIndexJoin {
            assume_sorted: true
        }
        .execute(&h, &hs, &JoinConfig::with_buffer(16))
        .is_err());
    }

    #[test]
    fn rejects_tiny_buffers() {
        let disk = SharedDisk::new(256);
        let r = rel("b", 20, 0, true);
        let hr = heap(&disk, &r);
        assert!(matches!(
            TimeIndexJoin::default().execute(&hr, &hr.clone(), &JoinConfig::with_buffer(3)),
            Err(JoinError::InsufficientMemory { .. })
        ));
    }
}
