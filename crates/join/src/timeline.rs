//! A checkpointed timeline index for temporal aggregation.
//!
//! Moerkotte & Kaufmann's *TimelineIndex* (see PAPERS.md / SNIPPETS.md)
//! organizes a temporal table as a chronon-sorted **event list** (one
//! activation and one deactivation event per interval) plus periodic
//! **checkpoints** of the set of rows open at that point in the list.
//! Aggregation over all of time is a single forward scan of the events;
//! a time-travel query restores the nearest checkpoint and replays at
//! most one checkpoint stride of events instead of the whole history.
//!
//! [`TimelineIndex::segments_sum`] and
//! [`TimelineIndex::segments_extremum`] reproduce the segment semantics
//! of the in-memory oracle (`vtjoin_core::algebra::aggregate`) exactly —
//! maximal constant intervals, interior zero gaps kept for additive
//! aggregates, leading/trailing zeros trimmed, open tails at
//! `Chronon::MAX` — so the production aggregation operator is
//! byte-identical to `count_over_time`/`sum_over_time`/
//! `extremum_over_time` over the same rows.

use vtjoin_core::algebra::{AggSegment, Extremum};
use vtjoin_core::{Chronon, Interval};

/// Events between two consecutive checkpoints.
const CHECKPOINT_STRIDE: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Event {
    at: Chronon,
    row: u32,
    add: bool,
}

#[derive(Debug, Clone)]
struct Checkpoint {
    /// Events `[0, event_idx)` are applied.
    event_idx: usize,
    /// Row ids open after applying them, ascending.
    open: Vec<u32>,
}

/// The checkpointed event-list index over a set of weighted intervals.
///
/// Rows are `(interval, value)`; `value` is the summand for additive
/// aggregates (pass `1` per row for `COUNT`) and the compared value for
/// extrema.
#[derive(Debug, Default)]
pub struct TimelineIndex {
    rows: Vec<(Interval, i64)>,
    events: Vec<Event>,
    checkpoints: Vec<Checkpoint>,
}

impl TimelineIndex {
    /// Builds the index over `rows` in one sort + one scan.
    pub fn build(rows: Vec<(Interval, i64)>) -> TimelineIndex {
        let mut events = Vec::with_capacity(rows.len() * 2);
        for (i, (iv, _)) in rows.iter().enumerate() {
            events.push(Event {
                at: iv.start(),
                row: i as u32,
                add: true,
            });
            // An interval ending at MAX never deactivates; the scans
            // handle the open tail.
            if iv.end() != Chronon::MAX {
                events.push(Event {
                    at: iv.end().succ(),
                    row: i as u32,
                    add: false,
                });
            }
        }
        events.sort_by_key(|e| e.at);

        let mut checkpoints = Vec::with_capacity(events.len() / CHECKPOINT_STRIDE + 1);
        let mut open = vec![false; rows.len()];
        for (i, e) in events.iter().enumerate() {
            if i % CHECKPOINT_STRIDE == 0 {
                checkpoints.push(Checkpoint {
                    event_idx: i,
                    open: open
                        .iter()
                        .enumerate()
                        .filter_map(|(r, &o)| o.then_some(r as u32))
                        .collect(),
                });
            }
            open[e.row as usize] = e.add;
        }
        TimelineIndex {
            rows,
            events,
            checkpoints,
        }
    }

    /// Number of indexed rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of endpoint events in the list.
    pub fn events(&self) -> usize {
        self.events.len()
    }

    /// Number of checkpoints taken.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Row ids valid at `t`: restore the nearest checkpoint at or before
    /// `t`'s position in the event list, replay the remainder. Ascending.
    pub fn open_at(&self, t: Chronon) -> Vec<u32> {
        // First event strictly past t: all events at chronons ≤ t apply.
        let pos = self.events.partition_point(|e| e.at <= t);
        let ck_idx = self
            .checkpoints
            .partition_point(|c| c.event_idx <= pos)
            .saturating_sub(1);
        let mut open = vec![false; self.rows.len()];
        let mut from = 0;
        if let Some(ck) = self.checkpoints.get(ck_idx) {
            if ck.event_idx <= pos {
                for &r in &ck.open {
                    open[r as usize] = true;
                }
                from = ck.event_idx;
            }
        }
        for e in &self.events[from..pos] {
            open[e.row as usize] = e.add;
        }
        open.iter()
            .enumerate()
            .filter_map(|(r, &o)| o.then_some(r as u32))
            .collect()
    }

    /// The additive aggregate (sum of open rows' values) at `t`.
    pub fn sum_at(&self, t: Chronon) -> i64 {
        self.open_at(t)
            .iter()
            .map(|&r| self.rows[r as usize].1)
            .sum()
    }

    /// Maximal constant segments of the additive aggregate — `COUNT`
    /// with per-row value 1, `SUM` with the attribute value. Matches
    /// `count_over_time`/`sum_over_time` over the same rows exactly:
    /// interior zero gaps are kept, leading/trailing zeros trimmed.
    pub fn segments_sum(&self) -> Vec<AggSegment> {
        if self.events.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<AggSegment> = Vec::new();
        let mut current: i64 = 0;
        let mut seg_start: Option<Chronon> = None;
        let mut i = 0;
        while i < self.events.len() {
            let at = self.events[i].at;
            if let Some(start) = seg_start {
                if start < at {
                    out.push(AggSegment {
                        interval: Interval::new(start, at.pred()).expect("start < at"),
                        value: current,
                    });
                }
            }
            while i < self.events.len() && self.events[i].at == at {
                let e = self.events[i];
                let w = self.rows[e.row as usize].1;
                current += if e.add { w } else { -w };
                i += 1;
            }
            seg_start = Some(at);
        }
        // Rows ending at MAX never deactivate: close the open tail.
        if let (Some(start), true) = (seg_start, current != 0) {
            out.push(AggSegment {
                interval: Interval::new(start, Chronon::MAX).expect("open tail"),
                value: current,
            });
        }
        while out.first().is_some_and(|s| s.value == 0) {
            out.remove(0);
        }
        while out.last().is_some_and(|s| s.value == 0) {
            out.pop();
        }
        out
    }

    /// Maximal constant segments of `MIN`/`MAX` over open rows' values.
    /// Matches `extremum_over_time` exactly: chronons with no open row
    /// produce no segment, and adjacent equal-valued segments merge.
    pub fn segments_extremum(&self, which: Extremum) -> Vec<AggSegment> {
        use std::collections::BTreeMap;
        if self.events.is_empty() {
            return Vec::new();
        }
        let mut active: BTreeMap<i64, usize> = BTreeMap::new();
        let mut out: Vec<AggSegment> = Vec::new();
        let mut seg_start: Option<Chronon> = None;
        let push_segment = |start: Chronon, end: Chronon, value: i64, out: &mut Vec<AggSegment>| {
            if let Some(last) = out.last_mut() {
                if last.value == value
                    && last.interval.end() != Chronon::MAX
                    && last.interval.end().succ() == start
                {
                    last.interval = Interval::new(last.interval.start(), end).expect("ordered");
                    return;
                }
            }
            out.push(AggSegment {
                interval: Interval::new(start, end).expect("ordered"),
                value,
            });
        };
        let extremum = |active: &BTreeMap<i64, usize>| match which {
            Extremum::Min => *active.keys().next().expect("non-empty"),
            Extremum::Max => *active.keys().next_back().expect("non-empty"),
        };
        let mut i = 0;
        while i < self.events.len() {
            let at = self.events[i].at;
            if let Some(start) = seg_start {
                if start < at && !active.is_empty() {
                    push_segment(start, at.pred(), extremum(&active), &mut out);
                }
            }
            while i < self.events.len() && self.events[i].at == at {
                let e = self.events[i];
                let v = self.rows[e.row as usize].1;
                if e.add {
                    *active.entry(v).or_insert(0) += 1;
                } else {
                    match active.get_mut(&v) {
                        Some(c) if *c > 1 => *c -= 1,
                        _ => {
                            active.remove(&v);
                        }
                    }
                }
                i += 1;
            }
            seg_start = Some(at);
        }
        if let (Some(start), false) = (seg_start, active.is_empty()) {
            push_segment(start, Chronon::MAX, extremum(&active), &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vtjoin_core::algebra::{count_over_time, extremum_over_time, sum_over_time};
    use vtjoin_core::{AttrDef, AttrType, Relation, Schema, Tuple, Value};

    fn rel(rows: &[(i64, i64, i64)]) -> Relation {
        let schema = Schema::new(vec![AttrDef::new("v", AttrType::Int)])
            .unwrap()
            .into_shared();
        let tuples = rows
            .iter()
            .map(|&(v, s, e)| Tuple::new(vec![Value::Int(v)], Interval::from_raw(s, e).unwrap()))
            .collect();
        Relation::from_parts_unchecked(Arc::clone(&schema), tuples)
    }

    fn index_of(r: &Relation, weight_one: bool) -> TimelineIndex {
        TimelineIndex::build(
            r.iter()
                .map(|t| {
                    let v = if weight_one {
                        1
                    } else {
                        t.value(0).as_int().unwrap()
                    };
                    (t.valid(), v)
                })
                .collect(),
        )
    }

    #[test]
    fn sum_segments_match_the_oracle() {
        let r = rel(&[(10, 0, 4), (5, 2, 6), (3, 2, 2), (7, 20, 25)]);
        assert_eq!(
            index_of(&r, false).segments_sum(),
            sum_over_time(&r, "v").unwrap()
        );
        assert_eq!(index_of(&r, true).segments_sum(), count_over_time(&r));
    }

    #[test]
    fn extremum_segments_match_the_oracle() {
        let r = rel(&[(10, 0, 5), (3, 2, 9), (7, 4, 4), (3, 12, 14), (3, 15, 20)]);
        let ti = index_of(&r, false);
        assert_eq!(
            ti.segments_extremum(Extremum::Min),
            extremum_over_time(&r, "v", Extremum::Min).unwrap()
        );
        assert_eq!(
            ti.segments_extremum(Extremum::Max),
            extremum_over_time(&r, "v", Extremum::Max).unwrap()
        );
    }

    #[test]
    fn open_tail_at_end_of_time() {
        let ti = TimelineIndex::build(vec![(
            Interval::new(Chronon::new(10), Chronon::MAX).unwrap(),
            1,
        )]);
        let segs = ti.segments_sum();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interval.end(), Chronon::MAX);
        assert_eq!(ti.sum_at(Chronon::new(1_000_000)), 1);
        assert_eq!(ti.sum_at(Chronon::new(9)), 0);
    }

    #[test]
    fn time_travel_replays_from_checkpoints() {
        // Enough rows that several checkpoints are taken; brute-force
        // check open_at/sum_at across the lifespan.
        let rows: Vec<(i64, i64, i64)> = (0..200)
            .map(|i| (i % 7, i % 50, i % 50 + (i % 13) + 1))
            .collect();
        let r = rel(&rows);
        let ti = index_of(&r, false);
        assert!(ti.checkpoints() > 2, "stride should produce checkpoints");
        assert_eq!(ti.events(), 400);
        for c in -2..=70i64 {
            let t = Chronon::new(c);
            let brute: Vec<u32> = r
                .iter()
                .enumerate()
                .filter(|(_, tu)| tu.valid().contains_chronon(t))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(ti.open_at(t), brute, "open rows at {c}");
            let sum: i64 = brute.iter().map(|&i| rows[i as usize].0).sum();
            assert_eq!(ti.sum_at(t), sum, "sum at {c}");
        }
    }

    #[test]
    fn empty_index() {
        let ti = TimelineIndex::build(Vec::new());
        assert!(ti.segments_sum().is_empty());
        assert!(ti.segments_extremum(Extremum::Max).is_empty());
        assert!(ti.open_at(Chronon::ZERO).is_empty());
    }
}
