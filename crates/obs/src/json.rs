//! A minimal JSON value, serializer, and parser.
//!
//! Execution reports must serialize without external crates (the build
//! containers have no registry access), so this module carries exactly
//! the JSON subset the report schema needs: objects, arrays, strings,
//! booleans, null, and **integers only** — every quantity in a report is
//! a counter or a microsecond count, so floating-point never appears in
//! the wire format and the round trip is exact. Object key order is
//! preserved, making serialization deterministic.

use std::fmt;

/// A JSON value restricted to the report schema's needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number. Floats are not part of the report schema and
    /// are rejected by the parser.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced when parsing malformed or out-of-subset JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (integer numbers only).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in report output;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are outside the report schema"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of i64 range"))
    }
}

/// Convenience: builds an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = obj(vec![
            ("a", Json::Int(-7)),
            (
                "b",
                Json::Arr(vec![
                    Json::Bool(true),
                    Json::Null,
                    Json::Str("x\"y\\z\n".into()),
                ]),
            ),
            ("c", obj(vec![("inner", Json::Int(i64::MAX))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let text = r#"{"z": 1, "a": 2}"#;
        match Json::parse(text).unwrap() {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_subset_and_malformed_input() {
        for bad in [
            "1.5",
            "1e3",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "12 34",
            "",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::Str("héllo ∞ \u{1}".into());
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = obj(vec![("n", Json::Int(5)), ("s", Json::Str("x".into()))]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
