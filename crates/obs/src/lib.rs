//! # vtjoin-obs — unified execution-report observability
//!
//! The paper's evaluation (§4) reasons about runs through two lenses: the
//! *predicted* cost the planner minimizes (`C_sample + C_join`, Figure 10)
//! and the *measured* I/O the execution actually performed. Before this
//! crate those lived in different places — planner output, `JoinReport`
//! notes, ad-hoc printing. [`ExecutionReport`] unifies them: per-phase
//! wall-clock timings and I/O counters, CPU-side counters, buffer-pool
//! behaviour, the planner's predicted cost decomposition, and a computed
//! predicted-vs-actual deviation section, in one value with
//!
//! * a human rendering ([`ExecutionReport::render_explain`], the CLI's
//!   `--explain`), and
//! * an exact JSON round trip ([`ExecutionReport::to_json_string`] /
//!   [`ExecutionReport::from_json_str`], the CLI's `--stats-json`),
//!   documented field-by-field in `docs/OBSERVABILITY.md`.
//!
//! The crate deliberately depends only on `vtjoin-storage` (for the raw
//! counter types); the join algorithms *construct* reports, so the
//! dependency points from `vtjoin-join` to here, never back. JSON is
//! hand-rolled ([`json::Json`]) because the build containers cannot reach
//! a cargo registry.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod report;

pub use json::{Json, JsonError};
pub use report::{
    BufferPoolSection, CandidateRow, ColumnarSection, ConfigSection, Counter, DeviationSection,
    ExecutionReport, FaultsSection, GridSection, IoSection, KernelSection, OperatorSection,
    PhaseSection, PlanSection, PredicateSection, PredictedCost, ReportError, ResultSection,
    ServiceSection, SkewSection, WorkerSection, SCHEMA_VERSION,
};
