//! The unified execution report.
//!
//! Every join path produces a [`ExecutionReport`]: one value unifying the
//! per-phase wall-clock timings, the four random/sequential I/O counters,
//! algorithm diagnostics, buffer-pool behaviour, the partition-join
//! planner's predicted costs, and — when predictions exist — a computed
//! predicted-vs-actual deviation section. The report renders two ways:
//! [`ExecutionReport::render_explain`] for humans and
//! [`ExecutionReport::to_json`] / [`ExecutionReport::from_json`] for
//! machines (see `docs/OBSERVABILITY.md` for the field-by-field schema).

use crate::json::{obj, Json, JsonError};
use std::fmt;
use vtjoin_storage::{CostRatio, IoStats};

/// Version stamped into every serialized report as `schema_version`.
/// Version 2 added `workers[].busy_micros` and the optional `skew`
/// section. Version 3 added the optional `faults` section
/// (fault-injection accounting and graceful-degradation outcome).
/// Version 4 added the optional `kernel` section (per-kernel partition
/// counts, sweep comparisons, batches flushed). Version 5 added the
/// optional `service` section (multi-query admission and plan-cache
/// accounting). Version 6 added the optional `predicate` section
/// (Allen-predicate name, compiled sweep template, and predicate-filter /
/// merge-fallback counters). Version 7 added the optional `grid` section
/// (2D key × time grid shape, cell counts and share, replication factor,
/// scatter/gather coordinator wait). Version 8 extended the `service`
/// section with priority-class request counts, load-shedding outcomes
/// (deadline / retry-after), streaming counters, LRU table-residency
/// counters, and a queue-wait histogram; all new fields decode as zero /
/// empty when absent, so v5–v7 service documents still parse. Version 9
/// added the optional `columnar` section (struct-of-arrays encode time,
/// radix-sort pass count, shared key-dictionary size, and
/// late-materialized row count), present when a run executed its kernels
/// on the columnar layout. Version 10 added the optional `operator`
/// section (temporal outer/semi/anti/aggregate executions: dangling
/// fragment, boundary-stitch, and timeline-checkpoint counters), present
/// when a run evaluated a non-inner member of the operator family.
///
/// Every post-v1 addition is an *optional* section or an optional field,
/// so [`ExecutionReport::from_json`] accepts any version from 1 up to the
/// current one — older (kernel-less, fault-less…) reports still parse —
/// and rejects only versions newer than it knows.
pub const SCHEMA_VERSION: i64 = 10;

/// Error produced when decoding a serialized report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The document is not valid JSON (or uses an out-of-subset feature).
    Json(JsonError),
    /// The document is JSON but not a well-formed report.
    Schema(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::Schema(msg) => write!(f, "report schema error: {msg}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

fn missing(key: &str) -> ReportError {
    ReportError::Schema(format!("missing or mistyped field '{key}'"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, ReportError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(key))
}

/// Decodes a field added after a section's first schema version: absent
/// means zero, so older documents still parse.
fn opt_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn req_i64(j: &Json, key: &str) -> Result<i64, ReportError> {
    j.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| missing(key))
}

fn req_str(j: &Json, key: &str) -> Result<String, ReportError> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| missing(key))
}

fn req_bool(j: &Json, key: &str) -> Result<bool, ReportError> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| missing(key))
}

fn req_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], ReportError> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| missing(key))
}

/// The configuration a run executed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigSection {
    /// Total main-memory budget in pages.
    pub buffer_pages: u64,
    /// Cost of one random access, in sequential-access units (the
    /// random:sequential ratio's numerator; sequential costs 1).
    pub random_cost: u64,
    /// RNG seed the run used.
    pub seed: u64,
}

/// Result cardinality. Result writes are cost-excluded (every algorithm
/// pays them identically), so only sizes are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultSection {
    /// Result tuples emitted.
    pub tuples: u64,
    /// Pages the result relation would occupy.
    pub pages: u64,
}

/// The four I/O counters plus derived totals, priced at the run's ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSection {
    /// Reads that required a seek.
    pub random_reads: u64,
    /// Reads that followed the previous read directly.
    pub seq_reads: u64,
    /// Writes that required a seek.
    pub random_writes: u64,
    /// Writes that followed the previous write directly.
    pub seq_writes: u64,
    /// Sum of all four counters.
    pub total_ios: u64,
    /// Weighted cost: `random × random_cost + sequential × 1`.
    pub cost: u64,
}

impl IoSection {
    /// Prices raw counters at `ratio`.
    pub fn from_stats(io: IoStats, ratio: CostRatio) -> IoSection {
        IoSection {
            random_reads: io.random_reads,
            seq_reads: io.seq_reads,
            random_writes: io.random_writes,
            seq_writes: io.seq_writes,
            total_ios: io.total_ios(),
            cost: io.cost(ratio),
        }
    }

    fn to_json(self) -> Json {
        obj(vec![
            ("random_reads", Json::Int(self.random_reads as i64)),
            ("seq_reads", Json::Int(self.seq_reads as i64)),
            ("random_writes", Json::Int(self.random_writes as i64)),
            ("seq_writes", Json::Int(self.seq_writes as i64)),
            ("total_ios", Json::Int(self.total_ios as i64)),
            ("cost", Json::Int(self.cost as i64)),
        ])
    }

    fn from_json(j: &Json) -> Result<IoSection, ReportError> {
        Ok(IoSection {
            random_reads: req_u64(j, "random_reads")?,
            seq_reads: req_u64(j, "seq_reads")?,
            random_writes: req_u64(j, "random_writes")?,
            seq_writes: req_u64(j, "seq_writes")?,
            total_ios: req_u64(j, "total_ios")?,
            cost: req_u64(j, "cost")?,
        })
    }
}

/// One execution phase: its I/O delta, wall-clock time, and (for phases
/// the planner modelled) the predicted cost it should have paid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSection {
    /// Phase name ("plan", "partition", "join", "sort-outer", …).
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub wall_micros: u64,
    /// I/O performed during the phase.
    pub io: IoSection,
    /// The planner's predicted cost for this phase, when it made one
    /// (partition join: `C_sample` for "plan", `C_join` for "join").
    pub predicted_cost: Option<u64>,
}

/// A named algorithm diagnostic (partition count, samples drawn, …).
/// The full name registry lives in `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Stable counter name.
    pub name: String,
    /// Counter value.
    pub value: i64,
}

/// Buffer-pool behaviour during the run, when a pool was involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolSection {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Dirty or clean frames evicted to make room.
    pub evictions: u64,
}

/// The predicted cost decomposition of the chosen plan (Figure 10's
/// objective, in cost units at the run's ratio).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictedCost {
    /// Sampling cost `m × IO_ran`.
    pub c_sample: u64,
    /// Partition-joining cost, including tuple-cache paging.
    pub c_join: u64,
    /// The tuple-cache paging component of `c_join`.
    pub c_cache: u64,
    /// Partition-count-dependent Grace flush-seek surcharge.
    pub c_partition_seeks: u64,
    /// The planner's objective: `c_sample + c_join + c_partition_seeks`.
    pub total: u64,
}

/// One row of the planner's candidate cost table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateRow {
    /// Candidate outer-partition size in pages.
    pub part_size: u64,
    /// Implied partition count.
    pub num_partitions: u64,
    /// Kolmogorov-required samples for the implied error budget.
    pub samples_required: u64,
    /// Predicted sampling cost.
    pub c_sample: u64,
    /// Predicted joining cost.
    pub c_join: u64,
    /// Tuple-cache component of `c_join`.
    pub c_cache: u64,
    /// Grace flush-seek surcharge.
    pub c_partition_seeks: u64,
    /// The candidate's objective value.
    pub total: u64,
    /// Whether the planner chose this candidate.
    pub chosen: bool,
}

/// What the partition-join planner decided and predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSection {
    /// Chosen outer-partition size in pages.
    pub part_size: u64,
    /// Number of partitions the plan produced.
    pub num_partitions: u64,
    /// Error budget `errorSize = buffSize − partSize` in pages.
    pub error_size: u64,
    /// Samples physically drawn (their I/O is charged to the run).
    pub samples_drawn: u64,
    /// Estimated total tuple-cache pages.
    pub est_cache_pages: u64,
    /// Predicted cost decomposition of the chosen candidate.
    pub predicted: PredictedCost,
    /// The full candidate table, ascending by `part_size`.
    pub candidates: Vec<CandidateRow>,
}

/// Predicted-vs-actual comparison for the phases the cost model covers
/// (sampling + partition joining; Grace partitioning's base cost is
/// model-independent and excluded, §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviationSection {
    /// Predicted cost of the modelled phases (`C_sample + C_join`).
    pub predicted_cost: u64,
    /// Measured cost of the same phases at the run's ratio.
    pub actual_cost: u64,
    /// `actual − predicted` (positive: model was optimistic).
    pub error: i64,
    /// `error` as a percentage of the predicted cost, rounded.
    pub error_percent: i64,
    /// The model's own slack: each of the `n` partitions may overshoot
    /// its target by up to `errorSize` pages (the Kolmogorov guarantee),
    /// each overrun page costing at most one cache write + re-read at
    /// random price — `n × errorSize × 2 × random_cost` cost units.
    pub tolerance: u64,
    /// Whether `|error| ≤ tolerance`.
    pub within_tolerance: bool,
}

impl DeviationSection {
    /// Computes the deviation of `actual_cost` from `predicted_cost`
    /// under the errorSize-derived `tolerance`.
    pub fn compute(predicted_cost: u64, actual_cost: u64, tolerance: u64) -> DeviationSection {
        let error = actual_cost as i64 - predicted_cost as i64;
        let error_percent = if predicted_cost == 0 {
            0
        } else {
            (error * 100) / predicted_cost as i64
        };
        DeviationSection {
            predicted_cost,
            actual_cost,
            error,
            error_percent,
            tolerance,
            within_tolerance: error.unsigned_abs() <= tolerance,
        }
    }
}

/// Per-worker breakdown of a parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSection {
    /// Worker index (0-based).
    pub worker: u64,
    /// Partitions the worker claimed from the work queue.
    pub partitions: u64,
    /// Result tuples the worker emitted.
    pub tuples: u64,
    /// Wall-clock from worker start to worker exit, in microseconds
    /// (includes time spent waiting on the work queue).
    pub wall_micros: u64,
    /// Microseconds actually spent joining partitions (build + probe);
    /// `busy_micros / wall_micros` is the worker's utilization.
    pub busy_micros: u64,
}

/// Partition-skew and worker-utilization summary of a parallel execution
/// (\[LM92b\] setting). Estimated cost of partition `i` is `|rᵢ|·|sᵢ|`,
/// the pairwise-candidate count the scheduler sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewSection {
    /// Number of partitions joined.
    pub partitions: u64,
    /// Sum of the per-partition estimated costs `Σ |rᵢ|·|sᵢ|`.
    pub est_cost_total: u64,
    /// Largest single-partition estimated cost `max |rᵢ|·|sᵢ|`.
    pub est_cost_max: u64,
    /// `est_cost_max` as a rounded-down percentage of `est_cost_total` —
    /// 100/partitions for a perfectly balanced workload, approaching 100
    /// under heavy skew.
    pub max_partition_share_percent: u64,
    /// Sum of the workers' `busy_micros`.
    pub busy_micros_total: u64,
    /// Largest single-worker `busy_micros` (the critical path).
    pub busy_micros_max: u64,
    /// `busy_micros_total / (workers × max worker wall_micros)` as a
    /// rounded-down percentage: 100 means no worker ever idled.
    pub utilization_percent: u64,
}

/// Fault-injection accounting for a run executed against a faulty disk
/// (the `faults` schema section, new in version 3). All counters are
/// deltas over the run; `degraded` records how many times the planner
/// fell back to the equal-width plan instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultsSection {
    /// Read attempts that were injected to fail.
    pub injected_read_faults: u64,
    /// Write attempts that were injected to fail.
    pub injected_write_faults: u64,
    /// Writes that reported success but persisted a corrupted page.
    pub torn_writes: u64,
    /// Pages whose checksum did not verify on decode.
    pub checksum_failures: u64,
    /// Retry attempts issued after an injected fault.
    pub retries: u64,
    /// Operations that ultimately succeeded after at least one retry.
    pub recovered: u64,
    /// Operations that exhausted the retry budget and surfaced an error.
    pub exhausted: u64,
    /// Total backoff units accumulated across retries (accounting only —
    /// the simulator never sleeps).
    pub backoff_steps: u64,
    /// Times the run degraded to a fallback plan instead of erroring.
    pub degraded: i64,
}

impl FaultsSection {
    fn to_json(self) -> Json {
        obj(vec![
            (
                "injected_read_faults",
                Json::Int(self.injected_read_faults as i64),
            ),
            (
                "injected_write_faults",
                Json::Int(self.injected_write_faults as i64),
            ),
            ("torn_writes", Json::Int(self.torn_writes as i64)),
            (
                "checksum_failures",
                Json::Int(self.checksum_failures as i64),
            ),
            ("retries", Json::Int(self.retries as i64)),
            ("recovered", Json::Int(self.recovered as i64)),
            ("exhausted", Json::Int(self.exhausted as i64)),
            ("backoff_steps", Json::Int(self.backoff_steps as i64)),
            ("degraded", Json::Int(self.degraded)),
        ])
    }

    fn from_json(j: &Json) -> Result<FaultsSection, ReportError> {
        Ok(FaultsSection {
            injected_read_faults: req_u64(j, "injected_read_faults")?,
            injected_write_faults: req_u64(j, "injected_write_faults")?,
            torn_writes: req_u64(j, "torn_writes")?,
            checksum_failures: req_u64(j, "checksum_failures")?,
            retries: req_u64(j, "retries")?,
            recovered: req_u64(j, "recovered")?,
            exhausted: req_u64(j, "exhausted")?,
            backoff_steps: req_u64(j, "backoff_steps")?,
            degraded: req_i64(j, "degraded")?,
        })
    }
}

/// Per-kernel accounting for executions that pick an intra-partition
/// join kernel per partition (the `kernel` schema section, new in
/// version 4). The gate chooses the sweep kernel on duplicate-heavy
/// partitions and the hash kernel elsewhere; both emit through batched
/// output chunks handed over once per partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelSection {
    /// Partitions joined by the hash kernel (BlockTable build + probe).
    pub hash_partitions: u64,
    /// Partitions joined by the forward-sweep kernel.
    pub sweep_partitions: u64,
    /// Hash-equal candidate pairs the sweep inspected. Every one already
    /// overlaps in time — compare with the `cpu_match_tests` counter,
    /// which includes the hash kernel's temporal rejects.
    pub sweep_comparisons: u64,
    /// Output batches spliced into the result (one per non-empty
    /// partition, instead of one push per tuple).
    pub batches_flushed: u64,
}

impl KernelSection {
    fn to_json(self) -> Json {
        obj(vec![
            ("hash_partitions", Json::Int(self.hash_partitions as i64)),
            ("sweep_partitions", Json::Int(self.sweep_partitions as i64)),
            (
                "sweep_comparisons",
                Json::Int(self.sweep_comparisons as i64),
            ),
            ("batches_flushed", Json::Int(self.batches_flushed as i64)),
        ])
    }

    fn from_json(j: &Json) -> Result<KernelSection, ReportError> {
        Ok(KernelSection {
            hash_partitions: req_u64(j, "hash_partitions")?,
            sweep_partitions: req_u64(j, "sweep_partitions")?,
            sweep_comparisons: req_u64(j, "sweep_comparisons")?,
            batches_flushed: req_u64(j, "batches_flushed")?,
        })
    }
}

/// Multi-query service accounting (the `service` schema section, new in
/// version 5; extended in version 8): admission-controller outcomes and
/// plan-cache behaviour across every request a `JoinService` run
/// processed. All counters are lifetime totals over the service run.
/// `queued` counts requests that were admitted only after blocking on the
/// page pool; `rejected` counts every refusal — oversize, queue-saturated,
/// deadline-shed, and retry-after-shed alike (each refusal is typed at
/// the API layer — the report keeps the sum, with the v8 shed counters
/// breaking out the load-shedding subset).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceSection {
    /// Join requests submitted to the service.
    pub requests: u64,
    /// Requests admitted (immediately or after queueing).
    pub admitted: u64,
    /// Requests that blocked in the admission queue before running.
    pub queued: u64,
    /// Requests refused by the admission controller (oversize or
    /// saturated queue).
    pub rejected: u64,
    /// Admitted requests that completed with a result.
    pub completed: u64,
    /// Admitted requests that failed with a typed join error.
    pub failed: u64,
    /// Plan-cache lookups that reused cached partition boundaries
    /// (skipping Kolmogorov sampling entirely).
    pub cache_hits: u64,
    /// Plan-cache lookups that found no usable entry and planned fresh.
    pub cache_misses: u64,
    /// Cache misses caused by an existing entry whose statistics
    /// fingerprint drifted past the errorSize tolerance (a subset of
    /// `cache_misses`).
    pub cache_invalidations: u64,
    /// Largest number of requests ever simultaneously blocked waiting
    /// for pool pages.
    pub queue_depth_high_water: u64,
    /// Total shared buffer-pool pages the admission controller manages.
    pub pool_pages: u64,
    /// Largest number of pool pages ever simultaneously reserved.
    pub pool_pages_high_water: u64,
    /// Requests submitted at interactive priority (v8).
    pub interactive_requests: u64,
    /// Requests submitted at batch priority (v8).
    pub batch_requests: u64,
    /// Requests submitted at background priority (v8).
    pub background_requests: u64,
    /// Requests shed because their admission deadline expired — before
    /// queueing (observed wait already too long) or while queued (v8; a
    /// subset of `rejected`).
    pub shed_deadline: u64,
    /// Background requests shed with a retry-after hint instead of
    /// queueing (v8; a subset of `rejected`).
    pub shed_retry_after: u64,
    /// Requests served through the streaming API (v8).
    pub streamed_requests: u64,
    /// Non-empty result batches delivered to streaming sinks (v8).
    pub streamed_batches: u64,
    /// Total tuples delivered through streaming sinks (v8).
    pub streamed_tuples: u64,
    /// Relation reads served from the LRU residency cache at zero heap
    /// I/O (v8).
    pub residency_hits: u64,
    /// Relation reads that faulted the table in from the heap (v8).
    pub residency_misses: u64,
    /// Resident relations evicted — LRU pressure or staleness after a
    /// table rewrite (v8).
    pub residency_evictions: u64,
    /// Exponentially-weighted moving average of admission queue wait, in
    /// microseconds — the load-shedding policy's retry-hint input (v8).
    pub queue_wait_ewma_micros: u64,
    /// Queue-wait histogram: admissions per wait bucket, buckets bounded
    /// at 100 µs, 1 ms, 10 ms, 100 ms, 1 s, 10 s, 100 s, +∞ (v8; empty in
    /// pre-v8 documents).
    pub queue_wait_histogram: Vec<u64>,
}

impl ServiceSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("requests", Json::Int(self.requests as i64)),
            ("admitted", Json::Int(self.admitted as i64)),
            ("queued", Json::Int(self.queued as i64)),
            ("rejected", Json::Int(self.rejected as i64)),
            ("completed", Json::Int(self.completed as i64)),
            ("failed", Json::Int(self.failed as i64)),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            ("cache_misses", Json::Int(self.cache_misses as i64)),
            (
                "cache_invalidations",
                Json::Int(self.cache_invalidations as i64),
            ),
            (
                "queue_depth_high_water",
                Json::Int(self.queue_depth_high_water as i64),
            ),
            ("pool_pages", Json::Int(self.pool_pages as i64)),
            (
                "pool_pages_high_water",
                Json::Int(self.pool_pages_high_water as i64),
            ),
            (
                "interactive_requests",
                Json::Int(self.interactive_requests as i64),
            ),
            ("batch_requests", Json::Int(self.batch_requests as i64)),
            (
                "background_requests",
                Json::Int(self.background_requests as i64),
            ),
            ("shed_deadline", Json::Int(self.shed_deadline as i64)),
            ("shed_retry_after", Json::Int(self.shed_retry_after as i64)),
            (
                "streamed_requests",
                Json::Int(self.streamed_requests as i64),
            ),
            ("streamed_batches", Json::Int(self.streamed_batches as i64)),
            ("streamed_tuples", Json::Int(self.streamed_tuples as i64)),
            ("residency_hits", Json::Int(self.residency_hits as i64)),
            ("residency_misses", Json::Int(self.residency_misses as i64)),
            (
                "residency_evictions",
                Json::Int(self.residency_evictions as i64),
            ),
            (
                "queue_wait_ewma_micros",
                Json::Int(self.queue_wait_ewma_micros as i64),
            ),
            (
                "queue_wait_histogram",
                Json::Arr(
                    self.queue_wait_histogram
                        .iter()
                        .map(|&n| Json::Int(n as i64))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<ServiceSection, ReportError> {
        Ok(ServiceSection {
            requests: req_u64(j, "requests")?,
            admitted: req_u64(j, "admitted")?,
            queued: req_u64(j, "queued")?,
            rejected: req_u64(j, "rejected")?,
            completed: req_u64(j, "completed")?,
            failed: req_u64(j, "failed")?,
            cache_hits: req_u64(j, "cache_hits")?,
            cache_misses: req_u64(j, "cache_misses")?,
            cache_invalidations: req_u64(j, "cache_invalidations")?,
            queue_depth_high_water: req_u64(j, "queue_depth_high_water")?,
            pool_pages: req_u64(j, "pool_pages")?,
            pool_pages_high_water: req_u64(j, "pool_pages_high_water")?,
            // v8 fields: absent in v5–v7 documents, which must still parse.
            interactive_requests: opt_u64(j, "interactive_requests"),
            batch_requests: opt_u64(j, "batch_requests"),
            background_requests: opt_u64(j, "background_requests"),
            shed_deadline: opt_u64(j, "shed_deadline"),
            shed_retry_after: opt_u64(j, "shed_retry_after"),
            streamed_requests: opt_u64(j, "streamed_requests"),
            streamed_batches: opt_u64(j, "streamed_batches"),
            streamed_tuples: opt_u64(j, "streamed_tuples"),
            residency_hits: opt_u64(j, "residency_hits"),
            residency_misses: opt_u64(j, "residency_misses"),
            residency_evictions: opt_u64(j, "residency_evictions"),
            queue_wait_ewma_micros: opt_u64(j, "queue_wait_ewma_micros"),
            queue_wait_histogram: j
                .get("queue_wait_histogram")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default(),
        })
    }
}

/// Allen-predicate accounting (the `predicate` schema section, new in
/// version 6): which generalized join predicate the run evaluated, which
/// sweep plan template it compiled to, and the counters of the two
/// predicate execution paths. `filter_checks`/`filter_hits` count the
/// intersection-template filter applied after the key-equality and
/// overlap tests inside the hash/sweep kernels; `merge_pairs_scanned`/
/// `merge_pairs_emitted` count the predicate-aware sort-merge fallback
/// used for sequence/mixed templates. A natural join carries no section.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PredicateSection {
    /// Canonical predicate name (`JoinPredicate`'s display form, e.g.
    /// "meets-or-overlaps" or "before-within-3").
    pub predicate: String,
    /// Compiled plan template: "intersection", "sequence", or "mixed".
    pub template: String,
    /// Key-equal candidate pairs the intersection-template filter tested.
    pub filter_checks: u64,
    /// Candidate pairs the filter accepted (result tuples emitted by the
    /// filtered kernels).
    pub filter_hits: u64,
    /// Key-equal candidate pairs the merge fallback scanned.
    pub merge_pairs_scanned: u64,
    /// Pairs the merge fallback emitted.
    pub merge_pairs_emitted: u64,
}

impl PredicateSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("predicate", Json::Str(self.predicate.clone())),
            ("template", Json::Str(self.template.clone())),
            ("filter_checks", Json::Int(self.filter_checks as i64)),
            ("filter_hits", Json::Int(self.filter_hits as i64)),
            (
                "merge_pairs_scanned",
                Json::Int(self.merge_pairs_scanned as i64),
            ),
            (
                "merge_pairs_emitted",
                Json::Int(self.merge_pairs_emitted as i64),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<PredicateSection, ReportError> {
        Ok(PredicateSection {
            predicate: req_str(j, "predicate")?,
            template: req_str(j, "template")?,
            filter_checks: req_u64(j, "filter_checks")?,
            filter_hits: req_u64(j, "filter_hits")?,
            merge_pairs_scanned: req_u64(j, "merge_pairs_scanned")?,
            merge_pairs_emitted: req_u64(j, "merge_pairs_emitted")?,
        })
    }
}

/// 2D grid-partitioned execution accounting (schema v7): the grid's two
/// axes (key-hash buckets × time ranges), how its cells were populated,
/// how concentrated the estimated work was, the replication overhead
/// (along the time axis only — the key axis never replicates), and how
/// long the scatter/gather coordinator spent blocked on its shard
/// workers. A 1×N shape is the paper's time-only partitioning expressed
/// as a degenerate grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GridSection {
    /// Key-axis bucket count (power of two; 1 = time-only).
    pub key_buckets: u64,
    /// Time-axis partition count.
    pub time_partitions: u64,
    /// Total cells, `key_buckets × time_partitions`.
    pub cells: u64,
    /// Cells holding any estimated work (`|r_c|·|s_c| > 0`).
    pub occupied_cells: u64,
    /// The heaviest cell's share of total estimated work, in percent.
    pub max_cell_share_percent: u64,
    /// Tuple replicas per input tuple, ×100 (100 = no replication).
    /// Identical for every key-axis width: tuples replicate only along
    /// the time axis.
    pub replication_factor_x100: u64,
    /// Wall-clock the coordinator spent waiting for shard workers to
    /// finish, before gathering their outputs in cell order.
    pub coordinator_wait_micros: u64,
}

impl GridSection {
    fn to_json(self) -> Json {
        obj(vec![
            ("key_buckets", Json::Int(self.key_buckets as i64)),
            ("time_partitions", Json::Int(self.time_partitions as i64)),
            ("cells", Json::Int(self.cells as i64)),
            ("occupied_cells", Json::Int(self.occupied_cells as i64)),
            (
                "max_cell_share_percent",
                Json::Int(self.max_cell_share_percent as i64),
            ),
            (
                "replication_factor_x100",
                Json::Int(self.replication_factor_x100 as i64),
            ),
            (
                "coordinator_wait_micros",
                Json::Int(self.coordinator_wait_micros as i64),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<GridSection, ReportError> {
        Ok(GridSection {
            key_buckets: req_u64(j, "key_buckets")?,
            time_partitions: req_u64(j, "time_partitions")?,
            cells: req_u64(j, "cells")?,
            occupied_cells: req_u64(j, "occupied_cells")?,
            max_cell_share_percent: req_u64(j, "max_cell_share_percent")?,
            replication_factor_x100: req_u64(j, "replication_factor_x100")?,
            coordinator_wait_micros: req_u64(j, "coordinator_wait_micros")?,
        })
    }
}

/// Columnar-execution accounting (schema v9): what the struct-of-arrays
/// encode pass and the columnar kernels did, when a run executed on the
/// columnar layout. `encode_micros` is wall-clock profiling (excluded
/// from regression comparison like every `*_micros` key); the other three
/// are deterministic functions of the input. A row-layout run carries no
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnarSection {
    /// Wall-clock microseconds the struct-of-arrays encode pass took
    /// (chronon/hash column extraction + key-dictionary interning).
    pub encode_micros: u64,
    /// LSD radix counting passes actually executed across all sweep-kernel
    /// sorts; passes whose byte is constant across the partition are
    /// skipped and not counted.
    pub radix_passes: u64,
    /// Distinct join keys interned in the dictionary shared by both sides.
    pub dict_size: u64,
    /// Result tuples constructed by the late-materialization pass (equals
    /// the result cardinality: every emitted row-id pair materializes).
    pub materialized_rows: u64,
}

impl ColumnarSection {
    fn to_json(self) -> Json {
        obj(vec![
            ("encode_micros", Json::Int(self.encode_micros as i64)),
            ("radix_passes", Json::Int(self.radix_passes as i64)),
            ("dict_size", Json::Int(self.dict_size as i64)),
            (
                "materialized_rows",
                Json::Int(self.materialized_rows as i64),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<ColumnarSection, ReportError> {
        Ok(ColumnarSection {
            encode_micros: req_u64(j, "encode_micros")?,
            radix_passes: req_u64(j, "radix_passes")?,
            dict_size: req_u64(j, "dict_size")?,
            materialized_rows: req_u64(j, "materialized_rows")?,
        })
    }
}

/// Temporal-operator accounting (schema v10): what the
/// dangling-fragment-tracking sweeps and the aggregation timeline did,
/// when a run evaluated a non-inner member of the operator family
/// (LEFT/FULL outer, semi, anti, aggregate). Every field is a
/// deterministic function of the input, so all of them participate in
/// regression comparison.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OperatorSection {
    /// Canonical string form of the operator (`left`, `full`, `semi`,
    /// `anti`, `aggregate:count`, `aggregate:sum:ATTR`, …).
    pub op: String,
    /// Grid cells that ran a tracked sweep (0 on the nested fallback).
    pub cells: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Key buckets of the operator grid (1 on the fallback).
    pub key_buckets: u64,
    /// Matched pairs logged under the canonical-partition rule.
    pub pairs_logged: u64,
    /// Outer-side dangling fragments emitted before stitching.
    pub outer_fragments: u64,
    /// Inner-side dangling fragments emitted before stitching.
    pub inner_fragments: u64,
    /// Outer fragments merged away at partition boundaries by the
    /// gather-phase stitch.
    pub stitched_outer: u64,
    /// Inner fragments merged away by the gather-phase stitch.
    pub stitched_inner: u64,
    /// Final maximal outer dangling intervals after stitching.
    pub outer_dangling: u64,
    /// Final maximal inner dangling intervals after stitching.
    pub inner_dangling: u64,
    /// Endpoint events in the aggregation timeline index.
    pub timeline_events: u64,
    /// Checkpoints the aggregation timeline index took.
    pub timeline_checkpoints: u64,
    /// Maximal constant segments the aggregation produced.
    pub agg_segments: u64,
    /// Whether the sequence/mixed-template nested fallback ran instead
    /// of the partitioned tracked sweep.
    pub fallback_nested: bool,
}

impl OperatorSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("op", Json::Str(self.op.clone())),
            ("cells", Json::Int(self.cells as i64)),
            ("workers", Json::Int(self.workers as i64)),
            ("key_buckets", Json::Int(self.key_buckets as i64)),
            ("pairs_logged", Json::Int(self.pairs_logged as i64)),
            ("outer_fragments", Json::Int(self.outer_fragments as i64)),
            ("inner_fragments", Json::Int(self.inner_fragments as i64)),
            ("stitched_outer", Json::Int(self.stitched_outer as i64)),
            ("stitched_inner", Json::Int(self.stitched_inner as i64)),
            ("outer_dangling", Json::Int(self.outer_dangling as i64)),
            ("inner_dangling", Json::Int(self.inner_dangling as i64)),
            ("timeline_events", Json::Int(self.timeline_events as i64)),
            (
                "timeline_checkpoints",
                Json::Int(self.timeline_checkpoints as i64),
            ),
            ("agg_segments", Json::Int(self.agg_segments as i64)),
            ("fallback_nested", Json::Bool(self.fallback_nested)),
        ])
    }

    fn from_json(j: &Json) -> Result<OperatorSection, ReportError> {
        Ok(OperatorSection {
            op: req_str(j, "op")?,
            cells: req_u64(j, "cells")?,
            workers: req_u64(j, "workers")?,
            key_buckets: req_u64(j, "key_buckets")?,
            pairs_logged: req_u64(j, "pairs_logged")?,
            outer_fragments: req_u64(j, "outer_fragments")?,
            inner_fragments: req_u64(j, "inner_fragments")?,
            stitched_outer: req_u64(j, "stitched_outer")?,
            stitched_inner: req_u64(j, "stitched_inner")?,
            outer_dangling: req_u64(j, "outer_dangling")?,
            inner_dangling: req_u64(j, "inner_dangling")?,
            timeline_events: req_u64(j, "timeline_events")?,
            timeline_checkpoints: req_u64(j, "timeline_checkpoints")?,
            agg_segments: req_u64(j, "agg_segments")?,
            fallback_nested: req_bool(j, "fallback_nested")?,
        })
    }
}

/// The unified execution report: one value describing everything a run
/// did, predicted, and measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Algorithm that produced the run ("partition", "sort-merge", …).
    pub algorithm: String,
    /// Configuration the run executed under.
    pub config: ConfigSection,
    /// Result cardinality.
    pub result: ResultSection,
    /// Whole-run I/O.
    pub io: IoSection,
    /// Per-phase breakdown, in execution order.
    pub phases: Vec<PhaseSection>,
    /// Algorithm diagnostics.
    pub counters: Vec<Counter>,
    /// Buffer-pool behaviour, when a pool was involved.
    pub buffer_pool: Option<BufferPoolSection>,
    /// Planner decision and predictions (partition join only).
    pub plan: Option<PlanSection>,
    /// Predicted-vs-actual comparison, when predictions exist.
    pub deviation: Option<DeviationSection>,
    /// Per-worker breakdown of parallel executions.
    pub workers: Vec<WorkerSection>,
    /// Partition-skew / utilization summary of parallel executions.
    pub skew: Option<SkewSection>,
    /// Per-kernel accounting, when the execution gated between
    /// intra-partition join kernels.
    pub kernel: Option<KernelSection>,
    /// Fault-injection accounting, when the run executed under injected
    /// faults (or observed any fault-path activity).
    pub faults: Option<FaultsSection>,
    /// Multi-query service accounting, when the run went through a
    /// `JoinService` (admission controller + plan cache).
    pub service: Option<ServiceSection>,
    /// Allen-predicate accounting, when the run evaluated a generalized
    /// (non-natural) join predicate.
    pub predicate: Option<PredicateSection>,
    /// 2D grid-partitioning accounting, when the run executed on the
    /// sharded (key × time) grid executor.
    pub grid: Option<GridSection>,
    /// Columnar-layout accounting, when the run encoded its join sides
    /// struct-of-arrays and ran the columnar kernels.
    pub columnar: Option<ColumnarSection>,
    /// Temporal-operator accounting, when the run evaluated a non-inner
    /// member of the operator family (outer/semi/anti/aggregate).
    pub operator: Option<OperatorSection>,
}

impl ExecutionReport {
    /// Looks up a diagnostic counter by name.
    pub fn counter(&self, name: &str) -> Option<i64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseSection> {
        self.phases.iter().find(|p| p.name == name)
    }

    // ---- JSON ----------------------------------------------------------------

    /// Serializes to the documented JSON schema (`docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("algorithm", Json::Str(self.algorithm.clone())),
            (
                "config",
                obj(vec![
                    ("buffer_pages", Json::Int(self.config.buffer_pages as i64)),
                    ("random_cost", Json::Int(self.config.random_cost as i64)),
                    ("seed", Json::Int(self.config.seed as i64)),
                ]),
            ),
            (
                "result",
                obj(vec![
                    ("tuples", Json::Int(self.result.tuples as i64)),
                    ("pages", Json::Int(self.result.pages as i64)),
                ]),
            ),
            ("io", self.io.to_json()),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            let mut ph = vec![
                                ("name", Json::Str(p.name.clone())),
                                ("wall_micros", Json::Int(p.wall_micros as i64)),
                                ("io", p.io.to_json()),
                            ];
                            if let Some(pred) = p.predicted_cost {
                                ph.push(("predicted_cost", Json::Int(pred as i64)));
                            }
                            obj(ph)
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("name", Json::Str(c.name.clone())),
                                ("value", Json::Int(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(bp) = self.buffer_pool {
            pairs.push((
                "buffer_pool",
                obj(vec![
                    ("hits", Json::Int(bp.hits as i64)),
                    ("misses", Json::Int(bp.misses as i64)),
                    ("evictions", Json::Int(bp.evictions as i64)),
                ]),
            ));
        }
        if let Some(plan) = &self.plan {
            pairs.push((
                "plan",
                obj(vec![
                    ("part_size", Json::Int(plan.part_size as i64)),
                    ("num_partitions", Json::Int(plan.num_partitions as i64)),
                    ("error_size", Json::Int(plan.error_size as i64)),
                    ("samples_drawn", Json::Int(plan.samples_drawn as i64)),
                    ("est_cache_pages", Json::Int(plan.est_cache_pages as i64)),
                    (
                        "predicted",
                        obj(vec![
                            ("c_sample", Json::Int(plan.predicted.c_sample as i64)),
                            ("c_join", Json::Int(plan.predicted.c_join as i64)),
                            ("c_cache", Json::Int(plan.predicted.c_cache as i64)),
                            (
                                "c_partition_seeks",
                                Json::Int(plan.predicted.c_partition_seeks as i64),
                            ),
                            ("total", Json::Int(plan.predicted.total as i64)),
                        ]),
                    ),
                    (
                        "candidates",
                        Json::Arr(
                            plan.candidates
                                .iter()
                                .map(|c| {
                                    obj(vec![
                                        ("part_size", Json::Int(c.part_size as i64)),
                                        ("num_partitions", Json::Int(c.num_partitions as i64)),
                                        ("samples_required", Json::Int(c.samples_required as i64)),
                                        ("c_sample", Json::Int(c.c_sample as i64)),
                                        ("c_join", Json::Int(c.c_join as i64)),
                                        ("c_cache", Json::Int(c.c_cache as i64)),
                                        (
                                            "c_partition_seeks",
                                            Json::Int(c.c_partition_seeks as i64),
                                        ),
                                        ("total", Json::Int(c.total as i64)),
                                        ("chosen", Json::Bool(c.chosen)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(d) = self.deviation {
            pairs.push((
                "deviation",
                obj(vec![
                    ("predicted_cost", Json::Int(d.predicted_cost as i64)),
                    ("actual_cost", Json::Int(d.actual_cost as i64)),
                    ("error", Json::Int(d.error)),
                    ("error_percent", Json::Int(d.error_percent)),
                    ("tolerance", Json::Int(d.tolerance as i64)),
                    ("within_tolerance", Json::Bool(d.within_tolerance)),
                ]),
            ));
        }
        if !self.workers.is_empty() {
            pairs.push((
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            obj(vec![
                                ("worker", Json::Int(w.worker as i64)),
                                ("partitions", Json::Int(w.partitions as i64)),
                                ("tuples", Json::Int(w.tuples as i64)),
                                ("wall_micros", Json::Int(w.wall_micros as i64)),
                                ("busy_micros", Json::Int(w.busy_micros as i64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(sk) = self.skew {
            pairs.push((
                "skew",
                obj(vec![
                    ("partitions", Json::Int(sk.partitions as i64)),
                    ("est_cost_total", Json::Int(sk.est_cost_total as i64)),
                    ("est_cost_max", Json::Int(sk.est_cost_max as i64)),
                    (
                        "max_partition_share_percent",
                        Json::Int(sk.max_partition_share_percent as i64),
                    ),
                    ("busy_micros_total", Json::Int(sk.busy_micros_total as i64)),
                    ("busy_micros_max", Json::Int(sk.busy_micros_max as i64)),
                    (
                        "utilization_percent",
                        Json::Int(sk.utilization_percent as i64),
                    ),
                ]),
            ));
        }
        if let Some(k) = self.kernel {
            pairs.push(("kernel", k.to_json()));
        }
        if let Some(fs) = self.faults {
            pairs.push(("faults", fs.to_json()));
        }
        if let Some(sv) = &self.service {
            pairs.push(("service", sv.to_json()));
        }
        if let Some(pd) = &self.predicate {
            pairs.push(("predicate", pd.to_json()));
        }
        if let Some(g) = self.grid {
            pairs.push(("grid", g.to_json()));
        }
        if let Some(c) = self.columnar {
            pairs.push(("columnar", c.to_json()));
        }
        if let Some(o) = &self.operator {
            pairs.push(("operator", o.to_json()));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to the documented JSON text format.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decodes a report from its JSON text form; exact inverse of
    /// [`ExecutionReport::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<ExecutionReport, ReportError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Decodes a report from a parsed JSON value.
    pub fn from_json(j: &Json) -> Result<ExecutionReport, ReportError> {
        let version = req_i64(j, "schema_version")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(ReportError::Schema(format!(
                "unsupported schema_version {version} (expected 1..={SCHEMA_VERSION})"
            )));
        }
        let config = j.get("config").ok_or_else(|| missing("config"))?;
        let result = j.get("result").ok_or_else(|| missing("result"))?;
        let mut phases = Vec::new();
        for p in req_arr(j, "phases")? {
            phases.push(PhaseSection {
                name: req_str(p, "name")?,
                wall_micros: req_u64(p, "wall_micros")?,
                io: IoSection::from_json(p.get("io").ok_or_else(|| missing("phases[].io"))?)?,
                predicted_cost: match p.get("predicted_cost") {
                    Some(v) => Some(v.as_u64().ok_or_else(|| missing("predicted_cost"))?),
                    None => None,
                },
            });
        }
        let mut counters = Vec::new();
        for c in req_arr(j, "counters")? {
            counters.push(Counter {
                name: req_str(c, "name")?,
                value: req_i64(c, "value")?,
            });
        }
        let buffer_pool = match j.get("buffer_pool") {
            Some(bp) => Some(BufferPoolSection {
                hits: req_u64(bp, "hits")?,
                misses: req_u64(bp, "misses")?,
                evictions: req_u64(bp, "evictions")?,
            }),
            None => None,
        };
        let plan = match j.get("plan") {
            Some(p) => {
                let pred = p
                    .get("predicted")
                    .ok_or_else(|| missing("plan.predicted"))?;
                let mut candidates = Vec::new();
                for c in req_arr(p, "candidates")? {
                    candidates.push(CandidateRow {
                        part_size: req_u64(c, "part_size")?,
                        num_partitions: req_u64(c, "num_partitions")?,
                        samples_required: req_u64(c, "samples_required")?,
                        c_sample: req_u64(c, "c_sample")?,
                        c_join: req_u64(c, "c_join")?,
                        c_cache: req_u64(c, "c_cache")?,
                        c_partition_seeks: req_u64(c, "c_partition_seeks")?,
                        total: req_u64(c, "total")?,
                        chosen: req_bool(c, "chosen")?,
                    });
                }
                Some(PlanSection {
                    part_size: req_u64(p, "part_size")?,
                    num_partitions: req_u64(p, "num_partitions")?,
                    error_size: req_u64(p, "error_size")?,
                    samples_drawn: req_u64(p, "samples_drawn")?,
                    est_cache_pages: req_u64(p, "est_cache_pages")?,
                    predicted: PredictedCost {
                        c_sample: req_u64(pred, "c_sample")?,
                        c_join: req_u64(pred, "c_join")?,
                        c_cache: req_u64(pred, "c_cache")?,
                        c_partition_seeks: req_u64(pred, "c_partition_seeks")?,
                        total: req_u64(pred, "total")?,
                    },
                    candidates,
                })
            }
            None => None,
        };
        let deviation = match j.get("deviation") {
            Some(d) => Some(DeviationSection {
                predicted_cost: req_u64(d, "predicted_cost")?,
                actual_cost: req_u64(d, "actual_cost")?,
                error: req_i64(d, "error")?,
                error_percent: req_i64(d, "error_percent")?,
                tolerance: req_u64(d, "tolerance")?,
                within_tolerance: req_bool(d, "within_tolerance")?,
            }),
            None => None,
        };
        let mut workers = Vec::new();
        if let Some(ws) = j.get("workers").and_then(Json::as_arr) {
            for w in ws {
                workers.push(WorkerSection {
                    worker: req_u64(w, "worker")?,
                    partitions: req_u64(w, "partitions")?,
                    tuples: req_u64(w, "tuples")?,
                    wall_micros: req_u64(w, "wall_micros")?,
                    busy_micros: req_u64(w, "busy_micros")?,
                });
            }
        }
        let skew = match j.get("skew") {
            Some(sk) => Some(SkewSection {
                partitions: req_u64(sk, "partitions")?,
                est_cost_total: req_u64(sk, "est_cost_total")?,
                est_cost_max: req_u64(sk, "est_cost_max")?,
                max_partition_share_percent: req_u64(sk, "max_partition_share_percent")?,
                busy_micros_total: req_u64(sk, "busy_micros_total")?,
                busy_micros_max: req_u64(sk, "busy_micros_max")?,
                utilization_percent: req_u64(sk, "utilization_percent")?,
            }),
            None => None,
        };
        let kernel = match j.get("kernel") {
            Some(k) => Some(KernelSection::from_json(k)?),
            None => None,
        };
        let faults = match j.get("faults") {
            Some(fs) => Some(FaultsSection::from_json(fs)?),
            None => None,
        };
        let service = match j.get("service") {
            Some(sv) => Some(ServiceSection::from_json(sv)?),
            None => None,
        };
        let predicate = match j.get("predicate") {
            Some(pd) => Some(PredicateSection::from_json(pd)?),
            None => None,
        };
        let grid = match j.get("grid") {
            Some(g) => Some(GridSection::from_json(g)?),
            None => None,
        };
        let columnar = match j.get("columnar") {
            Some(c) => Some(ColumnarSection::from_json(c)?),
            None => None,
        };
        let operator = match j.get("operator") {
            Some(o) => Some(OperatorSection::from_json(o)?),
            None => None,
        };
        Ok(ExecutionReport {
            algorithm: req_str(j, "algorithm")?,
            config: ConfigSection {
                buffer_pages: req_u64(config, "buffer_pages")?,
                random_cost: req_u64(config, "random_cost")?,
                seed: req_u64(config, "seed")?,
            },
            result: ResultSection {
                tuples: req_u64(result, "tuples")?,
                pages: req_u64(result, "pages")?,
            },
            io: IoSection::from_json(j.get("io").ok_or_else(|| missing("io"))?)?,
            phases,
            counters,
            buffer_pool,
            plan,
            deviation,
            workers,
            skew,
            kernel,
            faults,
            service,
            predicate,
            grid,
            columnar,
            operator,
        })
    }

    // ---- explain rendering -----------------------------------------------------

    /// Renders the human-readable explain output: configuration, the
    /// per-phase cost table (with a predicted-vs-actual deviation column
    /// where the planner made predictions), planner decision, candidate
    /// table, deviation summary, and worker breakdown.
    pub fn render_explain(&self) -> String {
        let mut out = String::new();
        let p = |out: &mut String, line: &str| {
            out.push_str(line);
            out.push('\n');
        };

        p(
            &mut out,
            &format!("{} join — execution report", self.algorithm),
        );
        p(
            &mut out,
            &format!(
                "  config: {} buffer pages, {}:1 random:sequential, seed {:#x}",
                self.config.buffer_pages, self.config.random_cost, self.config.seed
            ),
        );
        p(
            &mut out,
            &format!(
                "  result: {} tuples ({} pages, cost-excluded)",
                self.result.tuples, self.result.pages
            ),
        );
        out.push('\n');

        // Per-phase cost table.
        let mut rows: Vec<[String; 8]> = Vec::new();
        for ph in &self.phases {
            rows.push([
                ph.name.clone(),
                ph.wall_micros.to_string(),
                ph.io.random_reads.to_string(),
                ph.io.seq_reads.to_string(),
                ph.io.random_writes.to_string(),
                ph.io.seq_writes.to_string(),
                ph.io.cost.to_string(),
                match ph.predicted_cost {
                    Some(pred) => {
                        format!("{} ({:+})", pred, ph.io.cost as i64 - pred as i64)
                    }
                    None => "—".to_string(),
                },
            ]);
        }
        rows.push([
            "total".into(),
            self.phases
                .iter()
                .map(|p| p.wall_micros)
                .sum::<u64>()
                .to_string(),
            self.io.random_reads.to_string(),
            self.io.seq_reads.to_string(),
            self.io.random_writes.to_string(),
            self.io.seq_writes.to_string(),
            self.io.cost.to_string(),
            "".into(),
        ]);
        render_table(
            &mut out,
            &[
                "phase",
                "wall µs",
                "rnd rd",
                "seq rd",
                "rnd wr",
                "seq wr",
                "cost",
                "predicted (dev)",
            ],
            &rows,
        );

        if let Some(bp) = self.buffer_pool {
            p(
                &mut out,
                &format!(
                    "\n  buffer pool: {} hits / {} misses / {} evictions",
                    bp.hits, bp.misses, bp.evictions
                ),
            );
        }

        if !self.counters.is_empty() {
            p(&mut out, "\n  counters:");
            for c in &self.counters {
                p(&mut out, &format!("    {:<24} {}", c.name, c.value));
            }
        }

        if let Some(plan) = &self.plan {
            p(
                &mut out,
                &format!(
                    "\n  plan: partSize {} pages → {} partitions, errorSize {}, {} samples drawn, ≈{} cache pages",
                    plan.part_size,
                    plan.num_partitions,
                    plan.error_size,
                    plan.samples_drawn,
                    plan.est_cache_pages
                ),
            );
            if !plan.candidates.is_empty() {
                p(
                    &mut out,
                    "  candidate table (planner objective, Figure 10):",
                );
                let rows: Vec<[String; 8]> = plan
                    .candidates
                    .iter()
                    .map(|c| {
                        [
                            format!("{}{}", if c.chosen { "*" } else { " " }, c.part_size),
                            c.num_partitions.to_string(),
                            c.samples_required.to_string(),
                            c.c_sample.to_string(),
                            c.c_join.to_string(),
                            c.c_cache.to_string(),
                            c.c_partition_seeks.to_string(),
                            c.total.to_string(),
                        ]
                    })
                    .collect();
                render_table(
                    &mut out,
                    &[
                        "partSize", "parts", "m", "C_sample", "C_join", "C_cache", "C_seeks",
                        "total",
                    ],
                    &rows,
                );
            }
        }

        if let Some(d) = self.deviation {
            p(&mut out, "\n  predicted vs actual (modelled phases):");
            p(
                &mut out,
                &format!("    predicted cost  {}", d.predicted_cost),
            );
            p(&mut out, &format!("    actual cost     {}", d.actual_cost));
            p(
                &mut out,
                &format!(
                    "    deviation       {:+} ({:+}%) — {} errorSize tolerance of {}",
                    d.error,
                    d.error_percent,
                    if d.within_tolerance {
                        "within"
                    } else {
                        "OUTSIDE"
                    },
                    d.tolerance
                ),
            );
        }

        if !self.workers.is_empty() {
            p(&mut out, "\n  workers:");
            let rows: Vec<[String; 6]> = self
                .workers
                .iter()
                .map(|w| {
                    let util = (w.busy_micros * 100)
                        .checked_div(w.wall_micros)
                        .unwrap_or(100);
                    [
                        w.worker.to_string(),
                        w.partitions.to_string(),
                        w.tuples.to_string(),
                        w.wall_micros.to_string(),
                        w.busy_micros.to_string(),
                        format!("{util}%"),
                    ]
                })
                .collect();
            render_table(
                &mut out,
                &["worker", "parts", "tuples", "wall µs", "busy µs", "util"],
                &rows,
            );
        }

        if let Some(k) = self.kernel {
            p(&mut out, "\n  kernel:");
            p(
                &mut out,
                &format!(
                    "    partitions: {} hash / {} sweep",
                    k.hash_partitions, k.sweep_partitions
                ),
            );
            p(
                &mut out,
                &format!(
                    "    sweep comparisons: {} (all time-overlapping), {} output batches flushed",
                    k.sweep_comparisons, k.batches_flushed
                ),
            );
        }

        if let Some(pd) = &self.predicate {
            p(&mut out, "\n  predicate:");
            p(
                &mut out,
                &format!("    {} (template: {})", pd.predicate, pd.template),
            );
            p(
                &mut out,
                &format!(
                    "    kernel filter: {} hits / {} checks",
                    pd.filter_hits, pd.filter_checks
                ),
            );
            p(
                &mut out,
                &format!(
                    "    merge fallback: {} emitted / {} pairs scanned",
                    pd.merge_pairs_emitted, pd.merge_pairs_scanned
                ),
            );
        }

        if let Some(fs) = self.faults {
            p(&mut out, "\n  faults:");
            p(
                &mut out,
                &format!(
                    "    injected: {} read / {} write, {} torn writes, {} checksum failures",
                    fs.injected_read_faults,
                    fs.injected_write_faults,
                    fs.torn_writes,
                    fs.checksum_failures
                ),
            );
            p(
                &mut out,
                &format!(
                    "    retries: {} ({} recovered, {} exhausted, {} backoff steps)",
                    fs.retries, fs.recovered, fs.exhausted, fs.backoff_steps
                ),
            );
            p(&mut out, &format!("    degraded plans: {}", fs.degraded));
        }

        if let Some(sv) = &self.service {
            p(&mut out, "\n  service:");
            p(
                &mut out,
                &format!(
                    "    requests: {} ({} admitted, {} queued, {} rejected)",
                    sv.requests, sv.admitted, sv.queued, sv.rejected
                ),
            );
            p(
                &mut out,
                &format!(
                    "    priorities: {} interactive / {} batch / {} background",
                    sv.interactive_requests, sv.batch_requests, sv.background_requests
                ),
            );
            p(
                &mut out,
                &format!(
                    "    outcomes: {} completed, {} failed",
                    sv.completed, sv.failed
                ),
            );
            p(
                &mut out,
                &format!(
                    "    shed: {} deadline, {} retry-after",
                    sv.shed_deadline, sv.shed_retry_after
                ),
            );
            p(
                &mut out,
                &format!(
                    "    plan cache: {} hits / {} misses ({} invalidations)",
                    sv.cache_hits, sv.cache_misses, sv.cache_invalidations
                ),
            );
            p(
                &mut out,
                &format!(
                    "    residency: {} hits / {} misses ({} evictions)",
                    sv.residency_hits, sv.residency_misses, sv.residency_evictions
                ),
            );
            p(
                &mut out,
                &format!(
                    "    streamed: {} requests, {} batches, {} tuples",
                    sv.streamed_requests, sv.streamed_batches, sv.streamed_tuples
                ),
            );
            p(
                &mut out,
                &format!(
                    "    pool: {} pages, high water {} pages / {} queued requests",
                    sv.pool_pages, sv.pool_pages_high_water, sv.queue_depth_high_water
                ),
            );
            if !sv.queue_wait_histogram.is_empty() {
                let buckets: Vec<String> = sv
                    .queue_wait_histogram
                    .iter()
                    .map(|n| n.to_string())
                    .collect();
                p(
                    &mut out,
                    &format!(
                        "    queue wait: ewma {} µs, histogram [{}]",
                        sv.queue_wait_ewma_micros,
                        buckets.join(" ")
                    ),
                );
            }
        }

        if let Some(sk) = self.skew {
            p(&mut out, "\n  skew:");
            p(
                &mut out,
                &format!(
                    "    est cost (|rᵢ|·|sᵢ|): total {}, max {} ({}% in the heaviest of {} partitions)",
                    sk.est_cost_total,
                    sk.est_cost_max,
                    sk.max_partition_share_percent,
                    sk.partitions
                ),
            );
            p(
                &mut out,
                &format!(
                    "    busy µs: total {}, max {} — utilization {}%",
                    sk.busy_micros_total, sk.busy_micros_max, sk.utilization_percent
                ),
            );
        }

        if let Some(g) = self.grid {
            p(&mut out, "\n  grid:");
            p(
                &mut out,
                &format!(
                    "    shape: {} key buckets × {} time partitions = {} cells ({} occupied)",
                    g.key_buckets, g.time_partitions, g.cells, g.occupied_cells
                ),
            );
            p(
                &mut out,
                &format!(
                    "    heaviest cell: {}% of est work; replication {}.{:02}× (time axis only)",
                    g.max_cell_share_percent,
                    g.replication_factor_x100 / 100,
                    g.replication_factor_x100 % 100
                ),
            );
            p(
                &mut out,
                &format!("    coordinator wait: {} µs", g.coordinator_wait_micros),
            );
        }

        if let Some(c) = self.columnar {
            p(&mut out, "\n  columnar:");
            p(
                &mut out,
                &format!(
                    "    encode: {} µs, {} distinct keys interned",
                    c.encode_micros, c.dict_size
                ),
            );
            p(
                &mut out,
                &format!(
                    "    radix passes: {}, materialized rows: {}",
                    c.radix_passes, c.materialized_rows
                ),
            );
        }

        if let Some(o) = &self.operator {
            p(&mut out, &format!("\n  operator: {}", o.op));
            p(
                &mut out,
                &format!(
                    "    grid: {} cells ({} key buckets), {} workers{}",
                    o.cells,
                    o.key_buckets,
                    o.workers,
                    if o.fallback_nested {
                        " [nested fallback]"
                    } else {
                        ""
                    }
                ),
            );
            p(
                &mut out,
                &format!(
                    "    pairs: {}; dangling outer {} (of {} fragments, {} stitched), inner {} (of {}, {} stitched)",
                    o.pairs_logged,
                    o.outer_dangling,
                    o.outer_fragments,
                    o.stitched_outer,
                    o.inner_dangling,
                    o.inner_fragments,
                    o.stitched_inner
                ),
            );
            if o.timeline_events > 0 || o.agg_segments > 0 {
                p(
                    &mut out,
                    &format!(
                        "    timeline: {} events, {} checkpoints, {} segments",
                        o.timeline_events, o.timeline_checkpoints, o.agg_segments
                    ),
                );
            }
        }

        out
    }
}

fn render_table<const N: usize>(out: &mut String, headers: &[&str; N], rows: &[[String; N]]) {
    let mut widths: [usize; N] = [0; N];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.chars().count();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let emit = |out: &mut String, cells: &[String; N], widths: &[usize; N]| {
        out.push_str("   ");
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            if i == 0 {
                // Left-align the label column.
                out.push(' ');
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str("  ");
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        out.push('\n');
    };
    let head: [String; N] = std::array::from_fn(|i| headers[i].to_string());
    emit(out, &head, &widths);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (N - 1) + 1;
    out.push_str("   ");
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        emit(out, row, &widths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ExecutionReport {
        let io = IoSection {
            random_reads: 10,
            seq_reads: 90,
            random_writes: 5,
            seq_writes: 45,
            total_ios: 150,
            cost: 10 * 5 + 90 + 5 * 5 + 45,
        };
        ExecutionReport {
            algorithm: "partition".into(),
            config: ConfigSection {
                buffer_pages: 256,
                random_cost: 5,
                seed: 0x5eed,
            },
            result: ResultSection {
                tuples: 1234,
                pages: 40,
            },
            io,
            phases: vec![
                PhaseSection {
                    name: "plan".into(),
                    wall_micros: 120,
                    io,
                    predicted_cost: Some(80),
                },
                PhaseSection {
                    name: "partition".into(),
                    wall_micros: 400,
                    io,
                    predicted_cost: None,
                },
                PhaseSection {
                    name: "join".into(),
                    wall_micros: 700,
                    io,
                    predicted_cost: Some(200),
                },
            ],
            counters: vec![
                Counter {
                    name: "num_partitions".into(),
                    value: 17,
                },
                Counter {
                    name: "cpu_probes".into(),
                    value: -1,
                },
            ],
            buffer_pool: Some(BufferPoolSection {
                hits: 7,
                misses: 3,
                evictions: 1,
            }),
            plan: Some(PlanSection {
                part_size: 12,
                num_partitions: 17,
                error_size: 9,
                samples_drawn: 154,
                est_cache_pages: 6,
                predicted: PredictedCost {
                    c_sample: 80,
                    c_join: 200,
                    c_cache: 24,
                    c_partition_seeks: 16,
                    total: 296,
                },
                candidates: vec![CandidateRow {
                    part_size: 12,
                    num_partitions: 17,
                    samples_required: 154,
                    c_sample: 80,
                    c_join: 200,
                    c_cache: 24,
                    c_partition_seeks: 16,
                    total: 296,
                    chosen: true,
                }],
            }),
            deviation: Some(DeviationSection::compute(280, 300, 9 * 17 * 2 * 5)),
            workers: vec![WorkerSection {
                worker: 0,
                partitions: 17,
                tuples: 1234,
                wall_micros: 650,
                busy_micros: 600,
            }],
            skew: Some(SkewSection {
                partitions: 17,
                est_cost_total: 4000,
                est_cost_max: 900,
                max_partition_share_percent: 22,
                busy_micros_total: 600,
                busy_micros_max: 600,
                utilization_percent: 92,
            }),
            kernel: Some(KernelSection {
                hash_partitions: 5,
                sweep_partitions: 12,
                sweep_comparisons: 4321,
                batches_flushed: 17,
            }),
            faults: Some(FaultsSection {
                injected_read_faults: 4,
                injected_write_faults: 2,
                torn_writes: 1,
                checksum_failures: 1,
                retries: 5,
                recovered: 5,
                exhausted: 1,
                backoff_steps: 9,
                degraded: 1,
            }),
            service: Some(ServiceSection {
                requests: 24,
                admitted: 21,
                queued: 6,
                rejected: 3,
                completed: 20,
                failed: 1,
                cache_hits: 15,
                cache_misses: 5,
                cache_invalidations: 2,
                queue_depth_high_water: 4,
                pool_pages: 512,
                pool_pages_high_water: 480,
                interactive_requests: 8,
                batch_requests: 14,
                background_requests: 2,
                shed_deadline: 1,
                shed_retry_after: 2,
                streamed_requests: 3,
                streamed_batches: 40,
                streamed_tuples: 9000,
                residency_hits: 30,
                residency_misses: 12,
                residency_evictions: 4,
                queue_wait_ewma_micros: 350,
                queue_wait_histogram: vec![15, 4, 2, 0, 0, 0, 0, 0],
            }),
            predicate: Some(PredicateSection {
                predicate: "meets-or-overlaps".into(),
                template: "intersection".into(),
                filter_checks: 4321,
                filter_hits: 1234,
                merge_pairs_scanned: 0,
                merge_pairs_emitted: 0,
            }),
            grid: Some(GridSection {
                key_buckets: 4,
                time_partitions: 17,
                cells: 68,
                occupied_cells: 61,
                max_cell_share_percent: 9,
                replication_factor_x100: 112,
                coordinator_wait_micros: 640,
            }),
            columnar: Some(ColumnarSection {
                encode_micros: 210,
                radix_passes: 34,
                dict_size: 6,
                materialized_rows: 1234,
            }),
            operator: Some(OperatorSection {
                op: "full".into(),
                cells: 68,
                workers: 4,
                key_buckets: 4,
                pairs_logged: 1234,
                outer_fragments: 90,
                inner_fragments: 40,
                stitched_outer: 12,
                stitched_inner: 3,
                outer_dangling: 78,
                inner_dangling: 37,
                timeline_events: 0,
                timeline_checkpoints: 0,
                agg_segments: 0,
                fallback_nested: false,
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = ExecutionReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn optional_sections_round_trip_when_absent() {
        let mut report = sample_report();
        report.plan = None;
        report.deviation = None;
        report.buffer_pool = None;
        report.workers.clear();
        report.skew = None;
        report.kernel = None;
        report.faults = None;
        report.service = None;
        report.predicate = None;
        report.grid = None;
        report.columnar = None;
        report.operator = None;
        let back = ExecutionReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        assert!(!report.to_json_string().contains("\"plan\":"));
        assert!(!report.to_json_string().contains("\"kernel\":"));
        assert!(!report.to_json_string().contains("\"faults\":"));
        assert!(!report.to_json_string().contains("\"service\":"));
        assert!(!report.to_json_string().contains("\"predicate\":"));
        assert!(!report.to_json_string().contains("\"grid\":"));
        assert!(!report.to_json_string().contains("\"columnar\":"));
        assert!(!report.to_json_string().contains("\"operator\":"));
    }

    #[test]
    fn newer_version_is_rejected() {
        let text = sample_report().to_json_string().replacen(
            "\"schema_version\": 10",
            "\"schema_version\": 99",
            1,
        );
        assert!(matches!(
            ExecutionReport::from_json_str(&text),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn older_versions_still_parse() {
        // A v9 (operator-less), a v8 (columnar-less), a v6 (grid-less), a
        // v5 (predicate-less), a v4 (service-less), a v3 (kernel-less) and
        // a v1 (sections-less) document must all decode: every post-v1
        // addition is an optional section.
        let mut report = sample_report();
        report.operator = None;
        let v9 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 9", 1);
        let back = ExecutionReport::from_json_str(&v9).unwrap();
        assert_eq!(back.operator, None);
        assert_eq!(back.columnar, report.columnar);

        report.columnar = None;
        let v8 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 8", 1);
        let back = ExecutionReport::from_json_str(&v8).unwrap();
        assert_eq!(back.columnar, None);
        assert_eq!(back.grid, report.grid);

        report.grid = None;
        let v6 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 6", 1);
        let back = ExecutionReport::from_json_str(&v6).unwrap();
        assert_eq!(back.grid, None);
        assert_eq!(back.predicate, report.predicate);

        report.predicate = None;
        let v5 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 5", 1);
        let back = ExecutionReport::from_json_str(&v5).unwrap();
        assert_eq!(back.predicate, None);
        assert_eq!(back.service, report.service);

        report.service = None;
        let v4 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 4", 1);
        let back = ExecutionReport::from_json_str(&v4).unwrap();
        assert_eq!(back.service, None);
        assert_eq!(back.kernel, report.kernel);

        report.kernel = None;
        let v3 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 3", 1);
        let back = ExecutionReport::from_json_str(&v3).unwrap();
        assert_eq!(back.algorithm, report.algorithm);
        assert_eq!(back.kernel, None);
        assert_eq!(back.faults, report.faults);

        report.workers.clear();
        report.skew = None;
        report.faults = None;
        report.plan = None;
        report.deviation = None;
        report.buffer_pool = None;
        let v1 =
            report
                .to_json_string()
                .replacen("\"schema_version\": 10", "\"schema_version\": 1", 1);
        let back = ExecutionReport::from_json_str(&v1).unwrap();
        assert_eq!(back.result, report.result);
        assert!(matches!(
            ExecutionReport::from_json_str(&v1.replacen(
                "\"schema_version\": 1",
                "\"schema_version\": 0",
                1
            )),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn pre_v8_service_sections_decode_with_zeroed_v8_fields() {
        // A v5–v7 document carries a service section without any of the
        // v8 fields; they must decode as zero / empty, not as an error.
        let mut report = sample_report();
        let stripped = ServiceSection {
            interactive_requests: 0,
            batch_requests: 0,
            background_requests: 0,
            shed_deadline: 0,
            shed_retry_after: 0,
            streamed_requests: 0,
            streamed_batches: 0,
            streamed_tuples: 0,
            residency_hits: 0,
            residency_misses: 0,
            residency_evictions: 0,
            queue_wait_ewma_micros: 0,
            queue_wait_histogram: Vec::new(),
            ..report.service.clone().unwrap()
        };
        let v8_fields = [
            "interactive_requests",
            "batch_requests",
            "background_requests",
            "shed_deadline",
            "shed_retry_after",
            "streamed_requests",
            "streamed_batches",
            "streamed_tuples",
            "residency_hits",
            "residency_misses",
            "residency_evictions",
            "queue_wait_ewma_micros",
            "queue_wait_histogram",
        ];
        let mut doc = report.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (key, value) in pairs.iter_mut() {
                if key == "schema_version" {
                    *value = Json::Int(7);
                }
                if key == "service" {
                    if let Json::Obj(svc) = value {
                        svc.retain(|(k, _)| !v8_fields.contains(&k.as_str()));
                    }
                }
            }
        }
        let back = ExecutionReport::from_json_str(&doc.to_pretty()).unwrap();
        report.service = Some(stripped);
        assert_eq!(back.service, report.service);
    }

    #[test]
    fn missing_field_is_rejected() {
        let text = sample_report()
            .to_json_string()
            .replacen("\"algorithm\"", "\"algo\"", 1);
        assert!(ExecutionReport::from_json_str(&text).is_err());
    }

    #[test]
    fn deviation_math() {
        let d = DeviationSection::compute(100, 130, 50);
        assert_eq!(d.error, 30);
        assert_eq!(d.error_percent, 30);
        assert!(d.within_tolerance);
        let d = DeviationSection::compute(100, 20, 50);
        assert_eq!(d.error, -80);
        assert!(!d.within_tolerance);
        let d = DeviationSection::compute(0, 5, 10);
        assert_eq!(d.error_percent, 0);
        assert!(d.within_tolerance);
    }

    #[test]
    fn explain_contains_the_load_bearing_rows() {
        let text = sample_report().render_explain();
        for needle in [
            "partition join — execution report",
            "plan",
            "predicted (dev)",
            "total",
            "candidate table",
            "predicted vs actual",
            "within",
            "buffer pool: 7 hits / 3 misses / 1 evictions",
            "workers:",
            "busy µs",
            "skew:",
            "utilization 92%",
            "kernel:",
            "partitions: 5 hash / 12 sweep",
            "sweep comparisons: 4321 (all time-overlapping), 17 output batches flushed",
            "faults:",
            "injected: 4 read / 2 write, 1 torn writes, 1 checksum failures",
            "retries: 5 (5 recovered, 1 exhausted, 9 backoff steps)",
            "degraded plans: 1",
            "service:",
            "requests: 24 (21 admitted, 6 queued, 3 rejected)",
            "priorities: 8 interactive / 14 batch / 2 background",
            "shed: 1 deadline, 2 retry-after",
            "plan cache: 15 hits / 5 misses (2 invalidations)",
            "residency: 30 hits / 12 misses (4 evictions)",
            "streamed: 3 requests, 40 batches, 9000 tuples",
            "pool: 512 pages, high water 480 pages / 4 queued requests",
            "queue wait: ewma 350 µs, histogram [15 4 2 0 0 0 0 0]",
            "predicate:",
            "meets-or-overlaps (template: intersection)",
            "kernel filter: 1234 hits / 4321 checks",
            "merge fallback: 0 emitted / 0 pairs scanned",
            "grid:",
            "shape: 4 key buckets × 17 time partitions = 68 cells (61 occupied)",
            "heaviest cell: 9% of est work; replication 1.12× (time axis only)",
            "coordinator wait: 640 µs",
            "columnar:",
            "encode: 210 µs, 6 distinct keys interned",
            "radix passes: 34, materialized rows: 1234",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn accessors_find_phases_and_counters() {
        let r = sample_report();
        assert_eq!(r.counter("num_partitions"), Some(17));
        assert_eq!(r.counter("nope"), None);
        assert_eq!(r.phase("join").unwrap().predicted_cost, Some(200));
    }
}
