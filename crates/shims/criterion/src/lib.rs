//! Vendored, dependency-free stand-in for the subset of `criterion` 0.5
//! this workspace uses: [`Criterion`] with `bench_function` /
//! `benchmark_group`, [`BenchmarkGroup`] with `sample_size` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up plus a fixed number of timed
//! samples and prints the mean wall-clock per iteration — no statistical
//! analysis, outlier detection, or HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, as in real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.default_samples,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. A no-op here; kept for API compatibility.
    pub fn finish(self) {}
}

/// Identifies one benchmark as a `function/parameter` pair.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, once per sample after one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F>(id: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {id}: no iterations recorded");
    } else {
        let mean = b.total / (b.iters as u32);
        println!("bench {id}: mean {mean:?} over {} iters", b.iters);
    }
}

/// Declares a benchmark group function, as in real criterion. The
/// configuration-callback form (`config = ...`) is not supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // one warm-up + default_samples timed calls
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_honours_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x)
            })
        });
        group.finish();
        assert_eq!(calls, 4);
    }
}
