//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Vec<T>` with a length drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `elem` and whose length is
/// uniform in `len` (half-open, like real proptest's `SizeRange`).
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}
