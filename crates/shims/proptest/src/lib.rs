//! Vendored, dependency-free stand-in for the subset of `proptest` 1.x
//! this workspace uses: the [`proptest!`] / [`prop_compose!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], and the `prop_assert*` family.
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test's module path and name), so failures are reproducible run to run.
//! Unlike the real proptest there is **no shrinking**: a failure reports
//! the case index and seed instead of a minimal counterexample.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every test file starts with.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0..10i64, v in collection::vec(0..5u64, 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($var:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ( $($strat,)* );
            match &__strategies {
                ($($var,)*) => {
                    let mut __rejected: u32 = 0;
                    let mut __case: u32 = 0;
                    while __case < __config.cases {
                        let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                            __seed ^ (u64::from(__case + __rejected)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        );
                        $(let $var = $crate::strategy::Strategy::sample($var, &mut __rng);)*
                        let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        match __outcome {
                            ::std::result::Result::Ok(()) => { __case += 1; }
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                                __rejected += 1;
                                if __rejected > __config.cases * 16 {
                                    panic!(
                                        "property {} rejected too many cases ({})",
                                        stringify!($name), __rejected
                                    );
                                }
                            }
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                                panic!(
                                    "property {} failed at case {} (seed {:#x}):\n{}",
                                    stringify!($name), __case, __seed, msg
                                );
                            }
                        }
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Defines a named strategy function, proptest style:
///
/// ```ignore
/// prop_compose! {
///     fn arb_point(max: i64)(x in 0..max, y in 0..max) -> (i64, i64) { (x, y) }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
                              ($($var:ident in $strat:expr),* $(,)?)
                              -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::from_fn(move |__rng: &mut rand::rngs::StdRng| {
                $(let $var = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skips the current case when a precondition does not hold; the runner
/// draws a replacement case instead of counting it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    prop_compose! {
        fn arb_pair(max: i64)(a in 0..max, b in 0..max) -> (i64, i64) { (a, b) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5..50i64, y in 0u64..3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn composed_strategies_apply_args(pair in arb_pair(9)) {
            let (a, b) = pair;
            prop_assert!(a < 9 && b < 9, "got {a}, {b}");
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0..10i64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in &v { prop_assert!((0..10).contains(x)); }
        }

        #[test]
        fn maps_and_tuples(s in (0..10i64, 0..10i64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..=18).contains(&s));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0..100i64) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failures_report_case_and_seed(x in 0..10i64) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
