//! The [`Strategy`] trait and the combinators this workspace uses.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a sampling function over a seeded [`StdRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-processes sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy built from a plain sampling closure; used by `prop_compose!`.
pub struct FnStrategy<F> {
    f: F,
}

impl<O, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut StdRng) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(rng)
    }
}

/// Wraps a sampling closure as a [`Strategy`].
pub fn from_fn<O, F>(f: F) -> FnStrategy<F>
where
    F: Fn(&mut StdRng) -> O,
{
    FnStrategy { f }
}

/// `Just`-style strategy: always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Standalone `bool` strategy (`any::<bool>()` stand-in).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}
