//! Runner configuration and case outcomes.

/// Per-`proptest!` block configuration. Only `cases` is honoured; the
/// struct-update `..ProptestConfig::default()` idiom works as upstream.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Convenience constructor matching upstream's `with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property's assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition was unmet; the case is redrawn.
    Reject(String),
}

/// FNV-1a hash of a test's path — the deterministic base seed for its cases.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
