//! Vendored, dependency-free stand-in for the subset of `rand` 0.8 this
//! workspace uses: a seedable generator ([`rngs::StdRng`]), uniform range
//! sampling ([`Rng::gen_range`]), Bernoulli draws ([`Rng::gen_bool`]),
//! and Fisher–Yates shuffling ([`seq::SliceRandom::shuffle`]).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! per seed, which is the only property the workspace relies on. Streams
//! differ from upstream `rand`, so seeded fixtures produce *different but
//! equally valid* data than they would under the real crate.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, same construction as `gen_range(0.0..1.0)`.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that uniform values of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64. Stands in for `rand`'s `StdRng`;
    /// deterministic per seed but a different stream than upstream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // A xoshiro state of all zeroes is a fixed point; SplitMix64
            // cannot produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: u64 = rng.gen_range(3..=4);
            assert!((3..=4).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_coverage_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
