//! Minimal byte-cursor traits standing in for the `bytes` crate.
//!
//! The codec and page layers only ever append little-endian integers to a
//! `Vec<u8>` and consume them from a `&[u8]` cursor, so these two traits
//! carry exactly that surface. Reader methods panic when the cursor is
//! short; callers bounds-check first via [`Buf::remaining`] (see
//! `codec::need`), matching how the `bytes` crate was used before.

/// Read cursor over a byte slice; consuming methods advance the slice.
pub trait Buf {
    /// Bytes left in the cursor.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Append-only writer of little-endian primitives.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut v = Vec::new();
        v.put_u8(7);
        v.put_u16_le(513);
        v.put_u32_le(70_000);
        v.put_i64_le(-42);
        v.put_slice(b"xy");
        let mut cursor: &[u8] = &v;
        assert_eq!(cursor.remaining(), 17);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 513);
        assert_eq!(cursor.get_u32_le(), 70_000);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor, b"xy");
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 0);
    }
}
