//! A pin/unpin LRU buffer pool.
//!
//! The join algorithms of the paper manage their buffer budgets explicitly
//! (outer-partition area, inner page, tuple cache, result page — Figure 3),
//! so they do not go through a generic pool. The pool exists for the
//! engine layer (`vtjoin-engine`), whose catalog scans and view refreshes
//! benefit from ordinary caching, and it demonstrates that the substrate
//! supports conventional buffered access as well.

use crate::disk::{PageId, SharedDisk};
use crate::error::{Result, StorageError};
use std::collections::HashMap;

/// A fixed-capacity page cache with LRU eviction and pin counting.
///
/// Reads through the pool charge disk I/O only on miss. Dirty pages are
/// written back on eviction or [`BufferPool::flush_all`].
#[derive(Debug)]
pub struct BufferPool {
    disk: SharedDisk,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    /// LRU clock: larger = more recent.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A snapshot of a pool's lifetime behaviour counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferPoolStats {
    /// Page requests served from a resident frame (no disk I/O).
    pub hits: u64,
    /// Page requests that had to fault the page in from disk.
    pub misses: u64,
    /// Frames pushed out to make room; dirty victims also cost a write.
    pub evictions: u64,
}

#[derive(Debug)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

impl BufferPool {
    /// A pool of `capacity` page frames over `disk`.
    pub fn new(disk: SharedDisk, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            frames: HashMap::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// All lifetime counters in one snapshot.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    fn touch(tick: &mut u64, frame: &mut Frame) {
        *tick += 1;
        frame.last_used = *tick;
    }

    /// Ensures `page` is resident, evicting if necessary; returns whether
    /// it was a hit.
    fn fault_in(&mut self, page: PageId) -> Result<bool> {
        if self.frames.contains_key(&page) {
            self.hits += 1;
            return Ok(true);
        }
        self.misses += 1;
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        let data = self.disk.read(page)?;
        self.tick += 1;
        self.frames.insert(
            page,
            Frame {
                data,
                dirty: false,
                pins: 0,
                last_used: self.tick,
            },
        );
        Ok(false)
    }

    fn evict_one(&mut self) -> Result<()> {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(p, _)| *p)
            .ok_or_else(|| {
                StorageError::Corrupt("buffer pool exhausted: all pages pinned".into())
            })?;
        let frame = self.frames.remove(&victim).expect("victim resident");
        self.evictions += 1;
        if frame.dirty {
            self.disk.write(victim, frame.data)?;
        }
        Ok(())
    }

    /// Reads a page through the pool, pinning it for the duration of `f`.
    pub fn with_page<R>(&mut self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.fault_in(page)?;
        let frame = self.frames.get_mut(&page).expect("just faulted in");
        Self::touch(&mut self.tick, frame);
        Ok(f(&frame.data))
    }

    /// Mutates a page through the pool, marking it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        page: PageId,
        f: impl FnOnce(&mut Vec<u8>) -> R,
    ) -> Result<R> {
        self.fault_in(page)?;
        let frame = self.frames.get_mut(&page).expect("just faulted in");
        Self::touch(&mut self.tick, frame);
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Installs page contents without reading from disk (e.g. a freshly
    /// formatted page); marks it dirty.
    pub fn install(&mut self, page: PageId, data: Vec<u8>) -> Result<()> {
        if !self.frames.contains_key(&page) && self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        self.tick += 1;
        self.frames.insert(
            page,
            Frame {
                data,
                dirty: true,
                pins: 0,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    /// Pins a page so it cannot be evicted.
    pub fn pin(&mut self, page: PageId) -> Result<()> {
        self.fault_in(page)?;
        self.frames.get_mut(&page).expect("resident").pins += 1;
        Ok(())
    }

    /// Releases one pin.
    pub fn unpin(&mut self, page: PageId) {
        if let Some(f) = self.frames.get_mut(&page) {
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Writes back every dirty page (in page order, for deterministic I/O).
    pub fn flush_all(&mut self) -> Result<()> {
        let mut dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(p, _)| *p)
            .collect();
        dirty.sort();
        for p in dirty {
            let frame = self.frames.get_mut(&p).expect("resident");
            self.disk.write(p, frame.data.clone())?;
            frame.dirty = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(pages: u64) -> (SharedDisk, crate::file::PageRange) {
        let disk = SharedDisk::new(64);
        let r = disk.alloc(pages);
        for i in 0..pages {
            disk.write(r.page(i), vec![i as u8; 64]).unwrap();
        }
        (disk, r)
    }

    #[test]
    fn hits_avoid_disk_io() {
        let (disk, r) = setup(4);
        let mut pool = BufferPool::new(disk.clone(), 2);
        disk.reset_stats();
        pool.with_page(r.page(0), |d| assert_eq!(d[0], 0)).unwrap();
        pool.with_page(r.page(0), |d| assert_eq!(d[0], 0)).unwrap();
        pool.with_page(r.page(0), |_| ()).unwrap();
        assert_eq!(disk.stats().total_ios(), 1);
        assert_eq!(pool.hit_stats(), (2, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (disk, r) = setup(3);
        let mut pool = BufferPool::new(disk.clone(), 2);
        pool.with_page(r.page(0), |_| ()).unwrap();
        pool.with_page(r.page(1), |_| ()).unwrap();
        pool.with_page(r.page(0), |_| ()).unwrap(); // 1 is now LRU
        pool.with_page(r.page(2), |_| ()).unwrap(); // evicts 1
        disk.reset_stats();
        pool.with_page(r.page(0), |_| ()).unwrap(); // still resident
        assert_eq!(disk.stats().total_ios(), 0);
        pool.with_page(r.page(1), |_| ()).unwrap(); // miss
        assert_eq!(disk.stats().total_ios(), 1);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (disk, r) = setup(3);
        let mut pool = BufferPool::new(disk.clone(), 1);
        pool.with_page_mut(r.page(0), |d| d[0] = 99).unwrap();
        pool.with_page(r.page(1), |_| ()).unwrap(); // evicts dirty page 0
        let back = disk.with(|d| d.peek(r.page(0)).unwrap().to_vec());
        assert_eq!(back[0], 99);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (disk, r) = setup(2);
        let mut pool = BufferPool::new(disk.clone(), 2);
        pool.with_page_mut(r.page(0), |d| d[0] = 7).unwrap();
        pool.with_page_mut(r.page(1), |d| d[0] = 8).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(disk.with(|d| d.peek(r.page(0)).unwrap()[0]), 7);
        assert_eq!(disk.with(|d| d.peek(r.page(1)).unwrap()[0]), 8);
        // Second flush writes nothing.
        disk.reset_stats();
        pool.flush_all().unwrap();
        assert_eq!(disk.stats().total_ios(), 0);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let (disk, r) = setup(3);
        let mut pool = BufferPool::new(disk.clone(), 2);
        pool.pin(r.page(0)).unwrap();
        pool.with_page(r.page(1), |_| ()).unwrap();
        pool.with_page(r.page(2), |_| ()).unwrap(); // must evict 1, not pinned 0
        disk.reset_stats();
        pool.with_page(r.page(0), |_| ()).unwrap();
        assert_eq!(disk.stats().total_ios(), 0, "pinned page stayed resident");
        pool.unpin(r.page(0));
    }

    #[test]
    fn all_pinned_is_an_error() {
        let (disk, r) = setup(2);
        let mut pool = BufferPool::new(disk, 1);
        pool.pin(r.page(0)).unwrap();
        assert!(pool.with_page(r.page(1), |_| ()).is_err());
    }

    #[test]
    fn install_skips_initial_read() {
        let disk = SharedDisk::new(64);
        let r = disk.alloc(1); // never written on disk
        let mut pool = BufferPool::new(disk.clone(), 1);
        pool.install(r.page(0), vec![5u8; 64]).unwrap();
        pool.with_page(r.page(0), |d| assert_eq!(d[0], 5)).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(disk.with(|d| d.peek(r.page(0)).unwrap()[0]), 5);
    }

    #[test]
    fn stats_count_evictions() {
        let (disk, r) = setup(3);
        let mut pool = BufferPool::new(disk, 2);
        pool.with_page(r.page(0), |_| ()).unwrap();
        pool.with_page(r.page(1), |_| ()).unwrap();
        assert_eq!(pool.stats().evictions, 0);
        pool.with_page(r.page(2), |_| ()).unwrap(); // evicts 0
        pool.with_page(r.page(0), |_| ()).unwrap(); // evicts 1
        let stats = pool.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!((stats.hits, stats.misses), pool.hit_stats());
    }

    #[test]
    fn resident_counts() {
        let (disk, r) = setup(3);
        let mut pool = BufferPool::new(disk, 2);
        assert_eq!(pool.resident(), 0);
        pool.with_page(r.page(0), |_| ()).unwrap();
        pool.with_page(r.page(1), |_| ()).unwrap();
        assert_eq!(pool.resident(), 2);
        pool.with_page(r.page(2), |_| ()).unwrap();
        assert_eq!(pool.resident(), 2);
    }
}
