//! Binary tuple encoding.
//!
//! Records are self-describing: a fixed 16-byte valid-time header
//! (`Vs`, `Ve` as little-endian `i64`) followed by one tagged value per
//! attribute. The encoding is compact and deterministic; its only job is to
//! make page occupancy realistic (the paper's 128-byte tuples, 32 to a
//! 4 KB page) while remaining decodable without consulting the schema.

use crate::bufext::{Buf, BufMut};
use crate::error::{Result, StorageError};
use vtjoin_core::{Chronon, Interval, Tuple, Value};

/// Byte offset of the `u32` checksum field within a page image.
const CHECKSUM_OFFSET: usize = 2;

/// FNV-1a (32-bit) over a full page image, treating the four checksum
/// bytes at offset 2 as zero so the stored checksum does not feed its
/// own computation. The torn-write fault model flips a handful of bytes
/// anywhere in the image; FNV-1a detects any such flip, turning silent
/// corruption into a typed [`StorageError::Corrupt`] at decode time.
pub fn page_checksum(page: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for (i, &b) in page.iter().enumerate() {
        let byte = if (CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4).contains(&i) {
            0
        } else {
            b
        };
        h ^= u32::from(byte);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Value tags.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BYTES: u8 = 4;

/// Returns the encoded size of a tuple in bytes.
pub fn encoded_len(t: &Tuple) -> usize {
    let mut n = 16 + 1; // interval + arity byte
    for v in t.values() {
        n += 1; // tag
        n += match v {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 2 + s.len(),
            Value::Bytes(b) => 2 + b.len(),
        };
    }
    n
}

/// Appends the encoding of `t` to `out`.
pub fn encode_into(t: &Tuple, out: &mut Vec<u8>) {
    out.put_i64_le(t.valid().start().value());
    out.put_i64_le(t.valid().end().value());
    debug_assert!(
        t.values().len() <= u8::MAX as usize,
        "arity above 255 unsupported"
    );
    out.put_u8(t.values().len() as u8);
    for v in t.values() {
        match v {
            Value::Null => out.put_u8(TAG_NULL),
            Value::Int(i) => {
                out.put_u8(TAG_INT);
                out.put_i64_le(*i);
            }
            Value::Bool(b) => {
                out.put_u8(TAG_BOOL);
                out.put_u8(u8::from(*b));
            }
            Value::Str(s) => {
                debug_assert!(s.len() <= u16::MAX as usize);
                out.put_u8(TAG_STR);
                out.put_u16_le(s.len() as u16);
                out.put_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                debug_assert!(b.len() <= u16::MAX as usize);
                out.put_u8(TAG_BYTES);
                out.put_u16_le(b.len() as u16);
                out.put_slice(b);
            }
        }
    }
}

/// Encodes a tuple into a fresh buffer.
pub fn encode(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(t));
    encode_into(t, &mut out);
    out
}

fn need(buf: &[u8], n: usize) -> Result<()> {
    if buf.remaining() >= n {
        Ok(())
    } else {
        Err(StorageError::Corrupt(format!(
            "truncated record: need {n} bytes, have {}",
            buf.remaining()
        )))
    }
}

/// Decodes one tuple from the front of `buf`, advancing it.
pub fn decode(buf: &mut &[u8]) -> Result<Tuple> {
    need(buf, 17)?;
    let vs = buf.get_i64_le();
    let ve = buf.get_i64_le();
    let valid = Interval::new(Chronon::new(vs), Chronon::new(ve))
        .map_err(|e| StorageError::Corrupt(format!("bad interval: {e}")))?;
    let arity = buf.get_u8() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        need(buf, 1)?;
        let tag = buf.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                need(buf, 8)?;
                Value::Int(buf.get_i64_le())
            }
            TAG_BOOL => {
                need(buf, 1)?;
                Value::Bool(buf.get_u8() != 0)
            }
            TAG_STR => {
                need(buf, 2)?;
                let n = buf.get_u16_le() as usize;
                need(buf, n)?;
                let s = std::str::from_utf8(&buf[..n])
                    .map_err(|e| StorageError::Corrupt(format!("bad utf8: {e}")))?
                    .to_owned();
                buf.advance(n);
                Value::Str(s.into_boxed_str())
            }
            TAG_BYTES => {
                need(buf, 2)?;
                let n = buf.get_u16_le() as usize;
                need(buf, n)?;
                let b = buf[..n].to_vec();
                buf.advance(n);
                Value::Bytes(b.into_boxed_slice())
            }
            other => return Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        };
        values.push(v);
    }
    Ok(Tuple::new(values, valid))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: Vec<Value>, s: i64, e: i64) -> Tuple {
        Tuple::new(values, Interval::from_raw(s, e).unwrap())
    }

    #[test]
    fn round_trips_all_value_kinds() {
        let tuples = vec![
            t(vec![], 0, 0),
            t(vec![Value::Null], -5, 5),
            t(vec![Value::Int(i64::MIN), Value::Int(i64::MAX)], 1, 2),
            t(vec![Value::Bool(true), Value::Bool(false)], 3, 4),
            t(
                vec![
                    Value::Str(String::new().into()),
                    Value::Str("héllo ∞".into()),
                ],
                0,
                9,
            ),
            t(
                vec![
                    Value::Bytes(vec![].into()),
                    Value::Bytes(vec![0xde, 0xad].into()),
                ],
                7,
                8,
            ),
            t(
                vec![
                    Value::Int(42),
                    Value::Str("dept".into()),
                    Value::Null,
                    Value::Bytes(vec![1; 100].into()),
                    Value::Bool(true),
                ],
                -100,
                1_000_000,
            ),
        ];
        for orig in tuples {
            let bytes = encode(&orig);
            assert_eq!(bytes.len(), encoded_len(&orig));
            let mut cursor: &[u8] = &bytes;
            let back = decode(&mut cursor).unwrap();
            assert_eq!(back, orig);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn sequences_of_records_decode_in_order() {
        let a = t(vec![Value::Int(1)], 0, 1);
        let b = t(vec![Value::Int(2)], 2, 3);
        let mut buf = Vec::new();
        encode_into(&a, &mut buf);
        encode_into(&b, &mut buf);
        let mut cursor: &[u8] = &buf;
        assert_eq!(decode(&mut cursor).unwrap(), a);
        assert_eq!(decode(&mut cursor).unwrap(), b);
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&t(vec![Value::Str("hello".into())], 0, 1));
        for cut in [0, 5, 16, 17, 18, bytes.len() - 1] {
            let mut cursor: &[u8] = &bytes[..cut];
            assert!(decode(&mut cursor).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tag_and_bad_interval_are_detected() {
        let mut buf = Vec::new();
        buf.put_i64_le(0);
        buf.put_i64_le(1);
        buf.put_u8(1);
        buf.put_u8(99); // unknown tag
        let mut cursor: &[u8] = &buf;
        assert!(matches!(decode(&mut cursor), Err(StorageError::Corrupt(_))));

        let mut buf = Vec::new();
        buf.put_i64_le(5);
        buf.put_i64_le(1); // end < start
        buf.put_u8(0);
        let mut cursor: &[u8] = &buf;
        assert!(matches!(decode(&mut cursor), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn checksum_detects_any_single_flip_and_ignores_its_own_field() {
        let mut page = vec![0u8; 64];
        page[0] = 2; // count
        page[10] = 0xAB;
        let base = page_checksum(&page);
        // Writing the checksum into its field does not change the sum.
        page[2..6].copy_from_slice(&base.to_le_bytes());
        assert_eq!(page_checksum(&page), base);
        // Any flip outside the field changes the sum.
        for i in (0..64).filter(|i| !(2..6).contains(i)) {
            let mut tampered = page.clone();
            tampered[i] ^= 0xA5;
            assert_ne!(
                page_checksum(&tampered),
                base,
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn paper_tuple_is_128_bytes() {
        // The experiment tuple layout: key int + padding so the record is
        // exactly 128 bytes: 16 (interval) + 1 (arity) + 9 (int) + 3
        // (bytes header) + padding.
        let pad = 128 - (16 + 1 + 9 + 3);
        let tuple = t(vec![Value::Int(7), Value::Bytes(vec![0; pad].into())], 0, 0);
        assert_eq!(encoded_len(&tuple), 128);
    }
}
