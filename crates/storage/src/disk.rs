//! The simulated disk.
//!
//! [`DiskSim`] models a linear-addressed device. The only physical state
//! besides page contents are two **stream positions**: a read position and
//! a write position. A read of page `p` is *sequential* iff the previous
//! read touched `p − 1`, and likewise for writes; every other access —
//! including re-reading the same page — pays the random-access price.
//!
//! Separating the two streams models the read-ahead and write-behind
//! buffering every disk subsystem of the paper's era already had, and it
//! is the model the paper itself uses: a relation scan stays "a single
//! random read followed by sequential reads" even while partition buffers
//! are being flushed (§3.1), and tuple-cache appends "incur an inexpensive
//! sequential I/O cost" even though they interleave with inner-relation
//! reads (§4.3). Within one stream the accounting is strict: interleaving
//! flushes across partition files makes those *writes* random (the §4.2
//! small-memory effect), and backing up over scattered pages makes those
//! *reads* random.

use crate::error::{Result, StorageError};
use crate::faults::{FaultConfig, FaultInjector, FaultStats, RetryPolicy};
use crate::file::PageRange;
use crate::stats::IoStats;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Physical page address on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Whether an access was charged as random or sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Required a seek.
    Random,
    /// Followed the previous access directly.
    Sequential,
}

/// One entry of the optional access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Page touched.
    pub page: PageId,
    /// Random or sequential.
    pub kind: AccessKind,
    /// True for writes.
    pub write: bool,
}

/// A simulated linear-addressed disk with I/O cost accounting.
///
/// Pages are lazily materialized: allocating an extent only reserves
/// address space, memory is committed on first write. This lets callers
/// over-reserve contiguous extents (the simulator's analogue of
/// preallocating a file) at no cost.
///
/// ```
/// use vtjoin_storage::{DiskSim, PageId};
/// let mut disk = DiskSim::new(4096);
/// let extent = disk.alloc(3);
/// disk.write(extent.page(0), vec![1u8; 4096]).unwrap();
/// disk.write(extent.page(1), vec![2u8; 4096]).unwrap(); // sequential
/// let s = disk.stats();
/// assert_eq!(s.random_writes, 1);
/// assert_eq!(s.seq_writes, 1);
/// ```
#[derive(Debug)]
pub struct DiskSim {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    read_head: Option<PageId>,
    write_head: Option<PageId>,
    stats: IoStats,
    trace: Option<Vec<TraceEntry>>,
    faults: Option<FaultInjector>,
    fault_stats: FaultStats,
    retry: RetryPolicy,
}

impl DiskSim {
    /// Creates an empty device with the given page size in bytes.
    pub fn new(page_size: usize) -> DiskSim {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        DiskSim {
            page_size,
            pages: Vec::new(),
            read_head: None,
            write_head: None,
            stats: IoStats::ZERO,
            trace: None,
            faults: None,
            fault_stats: FaultStats::ZERO,
            retry: RetryPolicy::default(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages (committed or not).
    pub fn capacity_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of pages that have actually been written.
    pub fn committed_pages(&self) -> u64 {
        self.pages.iter().filter(|p| p.is_some()).count() as u64
    }

    /// Reserves a contiguous extent of `n` pages and returns its range.
    pub fn alloc(&mut self, n: u64) -> PageRange {
        let start = self.pages.len() as u64;
        self.pages
            .resize_with(self.pages.len() + n as usize, || None);
        PageRange::new(PageId(start), n)
    }

    /// Enables access tracing (for tests); returns previously traced
    /// entries if tracing was already on.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drains and returns the trace collected so far.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Cumulative statistics since construction or the last
    /// [`DiskSim::reset_stats`].
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zeroes the statistics counters (stream positions are preserved —
    /// the hardware does not move when the accountant changes ledgers).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::ZERO;
    }

    /// Forgets both stream positions, making the next accesses random.
    /// Used by tests; real executions never need it.
    pub fn invalidate_head(&mut self) {
        self.read_head = None;
        self.write_head = None;
    }

    /// Enables (or with `None` disables) fault injection. Enabling resets
    /// the fault stream to `cfg.seed`, so a run is replayed bit-identically
    /// by re-applying the same config.
    pub fn set_fault_config(&mut self, cfg: Option<FaultConfig>) {
        self.faults = cfg.map(FaultInjector::new);
    }

    /// The active fault configuration, if any.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.faults.as_ref().map(FaultInjector::config)
    }

    /// Replaces the retry policy for transient injected faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Cumulative fault statistics since construction or the last
    /// [`DiskSim::reset_fault_stats`].
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Zeroes the fault counters (the fault stream position is preserved).
    pub fn reset_fault_stats(&mut self) {
        self.fault_stats = FaultStats::ZERO;
    }

    /// Records a page-checksum verification failure observed by a decoder.
    ///
    /// The checksum is verified above the device (the decoder sees the
    /// bytes, the disk sees the I/O), so readers report detections back
    /// here to keep all fault accounting on one ledger.
    pub fn note_checksum_failure(&mut self) {
        self.fault_stats.checksum_failures += 1;
    }

    fn classify(head: &mut Option<PageId>, page: PageId) -> AccessKind {
        let kind = match head {
            Some(h) if h.0 + 1 == page.0 => AccessKind::Sequential,
            _ => AccessKind::Random,
        };
        *head = Some(page);
        kind
    }

    fn check_bounds(&self, page: PageId) -> Result<()> {
        if (page.0 as usize) < self.pages.len() {
            Ok(())
        } else {
            Err(StorageError::PageOutOfBounds {
                page: page.0,
                device_pages: self.pages.len() as u64,
            })
        }
    }

    fn charge(&mut self, page: PageId, write: bool) {
        let head = if write {
            &mut self.write_head
        } else {
            &mut self.read_head
        };
        let kind = Self::classify(head, page);
        match (write, kind) {
            (false, AccessKind::Random) => self.stats.random_reads += 1,
            (false, AccessKind::Sequential) => self.stats.seq_reads += 1,
            (true, AccessKind::Random) => self.stats.random_writes += 1,
            (true, AccessKind::Sequential) => self.stats.seq_writes += 1,
        }
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry { page, kind, write });
        }
    }

    /// Attempts an operation under the retry policy. Each attempt is
    /// charged as a real access (the device did the work even when the
    /// transfer failed; a retried access re-targets the same page, so it
    /// is charged random). Returns the number of attempts used on
    /// success, or [`StorageError::InjectedFault`] once the budget is
    /// exhausted. Backoff is recorded, never slept.
    fn attempt(&mut self, page: PageId, write: bool) -> Result<u32> {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            self.charge(page, write);
            let faulted = match &mut self.faults {
                Some(inj) => {
                    if write {
                        inj.roll_write_fail()
                    } else {
                        inj.roll_read_fail()
                    }
                }
                None => false,
            };
            if !faulted {
                if attempt > 1 {
                    self.fault_stats.recovered += 1;
                }
                return Ok(attempt);
            }
            if write {
                self.fault_stats.injected_write_faults += 1;
            } else {
                self.fault_stats.injected_read_faults += 1;
            }
            if attempt >= max_attempts {
                self.fault_stats.exhausted += 1;
                return Err(StorageError::InjectedFault {
                    page: page.0,
                    write,
                    attempts: attempt,
                });
            }
            self.fault_stats.retries += 1;
            self.fault_stats.backoff_steps += 1u64 << (attempt - 1).min(16);
            attempt += 1;
        }
    }

    /// Reads a page, charging one random or sequential read per attempt.
    ///
    /// Transient injected faults are retried under the disk's
    /// [`RetryPolicy`]; an exhausted budget surfaces
    /// [`StorageError::InjectedFault`].
    pub fn read(&mut self, page: PageId) -> Result<&[u8]> {
        self.check_bounds(page)?;
        self.attempt(page, false)?;
        self.pages[page.0 as usize]
            .as_deref()
            .ok_or(StorageError::UnwrittenPage(page.0))
    }

    /// Writes a page, charging one random or sequential write per
    /// attempt. `data` is padded with zeroes (or must not exceed) to the
    /// page size.
    ///
    /// Transient injected faults fail before any byte lands and are
    /// retried under the disk's [`RetryPolicy`]. A torn write succeeds
    /// from the caller's point of view but stores a corrupted image —
    /// detectable only by the page checksum at decode time.
    pub fn write(&mut self, page: PageId, data: Vec<u8>) -> Result<()> {
        self.check_bounds(page)?;
        assert!(
            data.len() <= self.page_size,
            "page write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        self.attempt(page, true)?;
        let mut buf = data;
        buf.resize(self.page_size, 0);
        if let Some(inj) = &mut self.faults {
            if inj.roll_torn_write() {
                self.fault_stats.torn_writes += 1;
                // Flip an 8-byte run at a stream-determined offset; the
                // page checksum covers the whole image, so any position
                // is detectable.
                let at = (inj.next_u64() as usize) % self.page_size;
                for b in buf.iter_mut().skip(at).take(8) {
                    *b ^= 0xA5;
                }
            }
        }
        self.pages[page.0 as usize] = Some(buf.into_boxed_slice());
        Ok(())
    }

    /// Reads a page **without** charging any I/O. Reserved for test
    /// assertions and debugging; algorithms must use [`DiskSim::read`].
    pub fn peek(&self, page: PageId) -> Result<&[u8]> {
        self.check_bounds(page)?;
        self.pages[page.0 as usize]
            .as_deref()
            .ok_or(StorageError::UnwrittenPage(page.0))
    }
}

/// A cheaply clonable handle to a shared [`DiskSim`].
///
/// The simulation is effectively single-threaded per disk, but the handle
/// is `Send + Sync` (via `std::sync::Mutex`) so relations and files can
/// be used from criterion benches and the engine's parallel ablations.
/// Lock poisoning is ignored: the simulator's state stays consistent
/// across a panicking access, so a poisoned lock is still usable.
#[derive(Debug, Clone)]
pub struct SharedDisk(Arc<Mutex<DiskSim>>);

impl SharedDisk {
    /// Wraps a new simulated disk.
    pub fn new(page_size: usize) -> SharedDisk {
        SharedDisk(Arc::new(Mutex::new(DiskSim::new(page_size))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskSim> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.lock().page_size()
    }

    /// Reserves a contiguous extent.
    pub fn alloc(&self, n: u64) -> PageRange {
        self.lock().alloc(n)
    }

    /// Reads a page into an owned buffer, charging one read.
    pub fn read(&self, page: PageId) -> Result<Vec<u8>> {
        self.lock().read(page).map(<[u8]>::to_vec)
    }

    /// Writes a page, charging one write.
    pub fn write(&self, page: PageId, data: Vec<u8>) -> Result<()> {
        self.lock().write(page, data)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IoStats {
        self.lock().stats()
    }

    /// Zeroes the statistics counters.
    pub fn reset_stats(&self) {
        self.lock().reset_stats()
    }

    /// Enables (or disables with `None`) fault injection.
    pub fn set_fault_config(&self, cfg: Option<FaultConfig>) {
        self.lock().set_fault_config(cfg)
    }

    /// The active fault configuration, if any.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.lock().fault_config()
    }

    /// Replaces the retry policy for transient injected faults.
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        self.lock().set_retry_policy(retry)
    }

    /// Cumulative fault statistics.
    pub fn fault_stats(&self) -> FaultStats {
        self.lock().fault_stats()
    }

    /// Records a page-checksum verification failure observed by a decoder.
    pub fn note_checksum_failure(&self) {
        self.lock().note_checksum_failure()
    }

    /// Runs `f` with exclusive access to the underlying simulator.
    pub fn with<R>(&self, f: impl FnOnce(&mut DiskSim) -> R) -> R {
        f(&mut self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(disk: &DiskSim) -> Vec<u8> {
        vec![7u8; disk.page_size()]
    }

    #[test]
    fn sequential_detection_follows_the_head() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(5);
        for i in 0..5 {
            d.write(r.page(i), page(&d)).unwrap();
        }
        // 1 random (first) + 4 sequential.
        assert_eq!(d.stats().random_writes, 1);
        assert_eq!(d.stats().seq_writes, 4);

        d.reset_stats();
        for i in 0..5 {
            d.read(r.page(i)).unwrap();
        }
        // First read of the stream seeks; the rest follow.
        assert_eq!(d.stats().random_reads, 1);
        assert_eq!(d.stats().seq_reads, 4);
    }

    #[test]
    fn rereading_same_page_is_random() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        d.write(r.page(0), page(&d)).unwrap();
        d.read(r.page(0)).unwrap();
        d.read(r.page(0)).unwrap();
        assert_eq!(d.stats().random_reads, 2);
        assert_eq!(d.stats().seq_reads, 0);
    }

    #[test]
    fn interleaved_files_force_random_io() {
        let mut d = DiskSim::new(64);
        let a = d.alloc(4);
        let b = d.alloc(4);
        // Alternate writes between the two extents: all random.
        for i in 0..4 {
            d.write(a.page(i), page(&d)).unwrap();
            d.write(b.page(i), page(&d)).unwrap();
        }
        assert_eq!(d.stats().random_writes, 8);
        assert_eq!(d.stats().seq_writes, 0);
    }

    #[test]
    fn adjacent_extents_can_chain_sequentially() {
        // The extent boundary is not a barrier: allocation is contiguous.
        let mut d = DiskSim::new(64);
        let a = d.alloc(2);
        let b = d.alloc(2);
        d.write(a.page(0), page(&d)).unwrap();
        d.write(a.page(1), page(&d)).unwrap();
        d.write(b.page(0), page(&d)).unwrap(); // physically next
        assert_eq!(d.stats().random_writes, 1);
        assert_eq!(d.stats().seq_writes, 2);
    }

    #[test]
    fn reads_and_writes_have_independent_streams() {
        // Read-ahead/write-behind model: an interleaved read does not
        // disturb a sequential write stream, and vice versa.
        let mut d = DiskSim::new(64);
        let r = d.alloc(4);
        for i in 0..4 {
            d.write(r.page(i), page(&d)).unwrap();
        }
        d.reset_stats();
        // Re-write 0..2 while reading 2..4 interleaved.
        d.write(r.page(0), page(&d)).unwrap();
        d.read(r.page(2)).unwrap();
        d.write(r.page(1), page(&d)).unwrap();
        d.read(r.page(3)).unwrap();
        let s = d.stats();
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.seq_writes, 1, "write stream uninterrupted by reads");
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 1, "read stream uninterrupted by writes");
    }

    #[test]
    fn out_of_bounds_and_unwritten_errors() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        assert!(matches!(
            d.read(PageId(99)),
            Err(StorageError::PageOutOfBounds { page: 99, .. })
        ));
        assert!(matches!(
            d.read(r.page(0)),
            Err(StorageError::UnwrittenPage(0))
        ));
    }

    #[test]
    fn write_roundtrips_data_padded() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        d.write(r.page(0), vec![9u8; 10]).unwrap();
        let data = d.read(r.page(0)).unwrap();
        assert_eq!(data.len(), 64);
        assert_eq!(&data[..10], &[9u8; 10]);
        assert_eq!(data[10], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        let _ = d.write(r.page(0), vec![0u8; 65]);
    }

    #[test]
    fn peek_is_free() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        d.write(r.page(0), page(&d)).unwrap();
        let before = d.stats();
        d.peek(r.page(0)).unwrap();
        assert_eq!(d.stats(), before);
    }

    #[test]
    fn trace_records_accesses() {
        let mut d = DiskSim::new(64);
        d.enable_trace();
        let r = d.alloc(2);
        d.write(r.page(0), page(&d)).unwrap();
        d.write(r.page(1), page(&d)).unwrap();
        d.read(r.page(0)).unwrap();
        let t = d.take_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].kind, AccessKind::Random);
        assert_eq!(t[1].kind, AccessKind::Sequential);
        assert!(!t[2].write && t[2].kind == AccessKind::Random);
        assert!(d.take_trace().is_empty());
    }

    #[test]
    fn reset_stats_keeps_head() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(2);
        d.write(r.page(0), page(&d)).unwrap();
        d.reset_stats();
        d.write(r.page(1), page(&d)).unwrap();
        assert_eq!(d.stats().seq_writes, 1, "head survived the reset");
        assert_eq!(d.stats().random_writes, 0);
    }

    #[test]
    fn shared_disk_handle() {
        let d = SharedDisk::new(64);
        let r = d.alloc(2);
        d.write(r.page(0), vec![1u8; 64]).unwrap();
        let other = d.clone();
        other.write(r.page(1), vec![2u8; 64]).unwrap();
        assert_eq!(d.stats().seq_writes, 1);
        assert_eq!(d.read(r.page(0)).unwrap()[0], 1);
        assert_eq!(d.page_size(), 64);
        d.reset_stats();
        assert_eq!(other.stats(), IoStats::ZERO);
    }

    #[test]
    fn faults_off_is_bit_identical_to_seed_behavior() {
        // The default disk has no injector: counters stay zero and the
        // retry loop degenerates to exactly one attempt per access.
        let mut d = DiskSim::new(64);
        let r = d.alloc(2);
        d.write(r.page(0), page(&d)).unwrap();
        d.read(r.page(0)).unwrap();
        assert_eq!(d.fault_stats(), crate::faults::FaultStats::ZERO);
        assert_eq!(d.stats().total_ios(), 2);
        assert!(d.fault_config().is_none());
    }

    #[test]
    fn injected_read_faults_retry_then_recover_or_exhaust() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(4);
        for i in 0..4 {
            d.write(r.page(i), page(&d)).unwrap();
        }
        // High but not certain rate: over many reads we must observe both
        // recoveries and (with NONE retry later) immediate surfacing.
        d.set_fault_config(Some(FaultConfig {
            seed: 11,
            read_fail_permille: 400,
            write_fail_permille: 0,
            torn_write_permille: 0,
        }));
        let mut errors = 0u32;
        for k in 0..200u64 {
            if d.read(r.page(k % 4)).is_err() {
                errors += 1;
            }
        }
        let fs = d.fault_stats();
        assert!(fs.injected_read_faults > 0, "rate 40% must fire");
        assert!(fs.recovered > 0, "some reads must recover via retry");
        assert_eq!(fs.exhausted, u64::from(errors));
        assert!(fs.retries >= fs.recovered);
        assert!(fs.backoff_steps >= fs.retries, "backoff grows with retries");
        assert_eq!(fs.injected_write_faults, 0);
    }

    #[test]
    fn retry_none_surfaces_first_fault() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        d.write(r.page(0), page(&d)).unwrap();
        d.set_retry_policy(RetryPolicy::NONE);
        d.set_fault_config(Some(FaultConfig {
            seed: 1,
            read_fail_permille: 1000,
            write_fail_permille: 0,
            torn_write_permille: 0,
        }));
        let e = d.read(r.page(0)).unwrap_err();
        assert!(matches!(
            e,
            StorageError::InjectedFault {
                write: false,
                attempts: 1,
                ..
            }
        ));
        assert!(e.is_transient());
        assert_eq!(d.fault_stats().retries, 0);
        assert_eq!(d.fault_stats().exhausted, 1);
    }

    #[test]
    fn certain_write_faults_leave_page_untouched() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        d.write(r.page(0), vec![7u8; 64]).unwrap();
        d.set_fault_config(Some(FaultConfig {
            seed: 5,
            read_fail_permille: 0,
            write_fail_permille: 1000,
            torn_write_permille: 0,
        }));
        let e = d.write(r.page(0), vec![9u8; 64]).unwrap_err();
        assert!(matches!(e, StorageError::InjectedFault { write: true, .. }));
        // The old image survives: transient write faults fail before
        // any byte lands.
        assert_eq!(d.peek(r.page(0)).unwrap()[0], 7);
    }

    #[test]
    fn torn_writes_corrupt_but_report_success() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(1);
        d.set_fault_config(Some(FaultConfig {
            seed: 9,
            read_fail_permille: 0,
            write_fail_permille: 0,
            torn_write_permille: 1000,
        }));
        d.write(r.page(0), vec![0u8; 64]).unwrap();
        assert_eq!(d.fault_stats().torn_writes, 1);
        let stored = d.peek(r.page(0)).unwrap();
        assert!(
            stored.iter().any(|&b| b != 0),
            "image must differ from what was written"
        );
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = |seed: u64| -> (FaultStats, Vec<u8>) {
            let mut d = DiskSim::new(64);
            let r = d.alloc(8);
            d.set_fault_config(Some(FaultConfig::uniform(seed, 300)));
            for i in 0..8 {
                let _ = d.write(r.page(i), vec![i as u8; 64]);
            }
            for i in 0..8 {
                let _ = d.read(r.page(i));
            }
            let img = d.peek(r.page(0)).map(<[u8]>::to_vec).unwrap_or_default();
            (d.fault_stats(), img)
        };
        assert_eq!(
            run(77),
            run(77),
            "identical seed, identical faults and images"
        );
        assert_ne!(run(77).0, run(78).0, "different seed perturbs the stream");
    }

    #[test]
    fn checksum_failures_are_notable() {
        let mut d = DiskSim::new(64);
        d.note_checksum_failure();
        assert_eq!(d.fault_stats().checksum_failures, 1);
        d.reset_fault_stats();
        assert_eq!(d.fault_stats(), crate::faults::FaultStats::ZERO);
    }

    #[test]
    fn committed_vs_capacity() {
        let mut d = DiskSim::new(64);
        let r = d.alloc(100);
        assert_eq!(d.capacity_pages(), 100);
        assert_eq!(d.committed_pages(), 0);
        d.write(r.page(7), page(&d)).unwrap();
        assert_eq!(d.committed_pages(), 1);
    }
}
