//! Storage error type.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id outside any allocated extent was accessed.
    PageOutOfBounds {
        /// The offending page id.
        page: u64,
        /// Current device size in pages.
        device_pages: u64,
    },
    /// A page was read before ever being written.
    UnwrittenPage(u64),
    /// A record is too large to fit even an empty page.
    RecordTooLarge {
        /// Encoded record size.
        record: usize,
        /// Usable bytes in one page.
        capacity: usize,
    },
    /// A page's bytes failed to decode.
    Corrupt(String),
    /// A file append exceeded the file's reserved extent.
    ExtentOverflow {
        /// Extent capacity in pages.
        capacity: u64,
    },
    /// An error bubbled up from the core data model.
    Core(vtjoin_core::TemporalError),
    /// An injected transient device fault that survived every retry.
    ///
    /// Only produced when fault injection is enabled on the disk
    /// (see [`crate::faults::FaultConfig`]).
    InjectedFault {
        /// The page the faulted operation targeted.
        page: u64,
        /// True for a write fault, false for a read fault.
        write: bool,
        /// Attempts performed before giving up (including the first).
        attempts: u32,
    },
}

impl StorageError {
    /// Whether the error models a *transient* device condition — one a
    /// retry at a higher level could plausibly clear. Corruption is not
    /// transient: a torn page stays torn no matter how often it is read.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::InjectedFault { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds { page, device_pages } => {
                write!(
                    f,
                    "page {page} out of bounds (device has {device_pages} pages)"
                )
            }
            StorageError::UnwrittenPage(p) => write!(f, "page {p} read before write"),
            StorageError::RecordTooLarge { record, capacity } => {
                write!(
                    f,
                    "record of {record} bytes exceeds page capacity {capacity}"
                )
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::ExtentOverflow { capacity } => {
                write!(f, "file append exceeded its {capacity}-page extent")
            }
            StorageError::Core(e) => write!(f, "{e}"),
            StorageError::InjectedFault {
                page,
                write,
                attempts,
            } => {
                let op = if *write { "write" } else { "read" };
                write!(
                    f,
                    "injected {op} fault on page {page} persisted across {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<vtjoin_core::TemporalError> for StorageError {
    fn from(e: vtjoin_core::TemporalError) -> Self {
        StorageError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = StorageError::PageOutOfBounds {
            page: 9,
            device_pages: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = StorageError::RecordTooLarge {
            record: 5000,
            capacity: 4094,
        };
        assert!(e.to_string().contains("5000"));
    }

    #[test]
    fn transience_is_limited_to_injected_faults() {
        let e = StorageError::InjectedFault {
            page: 3,
            write: true,
            attempts: 4,
        };
        assert!(e.is_transient());
        assert!(e.to_string().contains("write fault on page 3"));
        assert!(!StorageError::Corrupt("torn".into()).is_transient());
        assert!(!StorageError::UnwrittenPage(0).is_transient());
    }

    #[test]
    fn core_errors_convert() {
        let e: StorageError = vtjoin_core::TemporalError::UnknownAttribute("x".into()).into();
        assert!(matches!(e, StorageError::Core(_)));
    }
}
