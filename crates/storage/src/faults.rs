//! Deterministic, seeded fault injection for the simulated disk.
//!
//! Real devices fail: reads time out, writes land torn. The simulator
//! models three fault classes, each drawn from one seeded generator so a
//! given `(workload, seed)` pair replays bit-identically:
//!
//! * **transient read faults** — the read returns an error; the data is
//!   intact and a retry may succeed,
//! * **transient write faults** — the write returns an error before any
//!   byte lands; the previous page image (if any) is untouched,
//! * **torn writes** — the write *appears* to succeed but the stored
//!   image is corrupted. Torn pages are persistent: no retry helps, only
//!   the page checksum (see [`crate::codec::page_checksum`]) catches them
//!   at read time.
//!
//! Transient faults are absorbed by the disk's bounded
//! retry-with-backoff policy ([`RetryPolicy`]); the backoff is an
//! accounting quantity (the simulator never sleeps). All outcomes are
//! tallied in [`FaultStats`] so the observability layer can report how
//! hard a run had to fight the hardware.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Fault probabilities in parts per mille (‰), plus the generator seed.
///
/// A rate of `50` means 5% of the matching operations fault. All-zero
/// rates make the injector a no-op (but still deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Transient read-failure probability, ‰.
    pub read_fail_permille: u32,
    /// Transient write-failure probability, ‰.
    pub write_fail_permille: u32,
    /// Torn-write (persistent corruption) probability, ‰.
    pub torn_write_permille: u32,
}

impl FaultConfig {
    /// A config injecting every fault class at the same rate.
    pub fn uniform(seed: u64, permille: u32) -> FaultConfig {
        FaultConfig {
            seed,
            read_fail_permille: permille,
            write_fail_permille: permille,
            torn_write_permille: permille,
        }
    }

    /// Whether every rate is zero (the injector cannot fire).
    pub fn is_noop(&self) -> bool {
        self.read_fail_permille == 0
            && self.write_fail_permille == 0
            && self.torn_write_permille == 0
    }
}

/// Bounded retry policy for transient injected faults.
///
/// `max_attempts` counts the initial try: `max_attempts == 1` disables
/// retrying entirely. Backoff between attempts is exponential
/// (1, 2, 4, … units) and is recorded in
/// [`FaultStats::backoff_steps`] rather than slept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// No retrying: every transient fault surfaces immediately.
    pub const NONE: RetryPolicy = RetryPolicy { max_attempts: 1 };
}

impl Default for RetryPolicy {
    /// One initial try plus up to three retries.
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 4 }
    }
}

/// Monotone counters describing injected faults and their resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FaultStats {
    /// Transient read faults injected (counting every faulted attempt).
    pub injected_read_faults: u64,
    /// Transient write faults injected (counting every faulted attempt).
    pub injected_write_faults: u64,
    /// Writes whose stored image was silently corrupted.
    pub torn_writes: u64,
    /// Page-checksum verification failures observed at decode time.
    pub checksum_failures: u64,
    /// Retry attempts performed after a transient fault.
    pub retries: u64,
    /// Operations that faulted at least once but ultimately succeeded.
    pub recovered: u64,
    /// Operations that faulted on every attempt and surfaced an error.
    pub exhausted: u64,
    /// Exponential-backoff units accrued across all retries.
    pub backoff_steps: u64,
}

impl FaultStats {
    /// All-zero statistics.
    pub const ZERO: FaultStats = FaultStats {
        injected_read_faults: 0,
        injected_write_faults: 0,
        torn_writes: 0,
        checksum_failures: 0,
        retries: 0,
        recovered: 0,
        exhausted: 0,
        backoff_steps: 0,
    };

    /// Total transient faults injected, reads plus writes.
    pub fn injected(&self) -> u64 {
        self.injected_read_faults + self.injected_write_faults
    }

    /// Whether any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != FaultStats::ZERO
    }
}

impl Add for FaultStats {
    type Output = FaultStats;
    fn add(self, o: FaultStats) -> FaultStats {
        FaultStats {
            injected_read_faults: self.injected_read_faults + o.injected_read_faults,
            injected_write_faults: self.injected_write_faults + o.injected_write_faults,
            torn_writes: self.torn_writes + o.torn_writes,
            checksum_failures: self.checksum_failures + o.checksum_failures,
            retries: self.retries + o.retries,
            recovered: self.recovered + o.recovered,
            exhausted: self.exhausted + o.exhausted,
            backoff_steps: self.backoff_steps + o.backoff_steps,
        }
    }
}

impl AddAssign for FaultStats {
    fn add_assign(&mut self, o: FaultStats) {
        *self = *self + o;
    }
}

impl Sub for FaultStats {
    type Output = FaultStats;
    /// Saturating per-field difference — used to compute per-run deltas
    /// from the disk's monotone counters.
    fn sub(self, o: FaultStats) -> FaultStats {
        FaultStats {
            injected_read_faults: self
                .injected_read_faults
                .saturating_sub(o.injected_read_faults),
            injected_write_faults: self
                .injected_write_faults
                .saturating_sub(o.injected_write_faults),
            torn_writes: self.torn_writes.saturating_sub(o.torn_writes),
            checksum_failures: self.checksum_failures.saturating_sub(o.checksum_failures),
            retries: self.retries.saturating_sub(o.retries),
            recovered: self.recovered.saturating_sub(o.recovered),
            exhausted: self.exhausted.saturating_sub(o.exhausted),
            backoff_steps: self.backoff_steps.saturating_sub(o.backoff_steps),
        }
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults {}r/{}w, torn {}, checksum {}, retries {} ({} recovered, {} exhausted)",
            self.injected_read_faults,
            self.injected_write_faults,
            self.torn_writes,
            self.checksum_failures,
            self.retries,
            self.recovered,
            self.exhausted
        )
    }
}

/// The seeded fault stream. splitmix64: tiny, well distributed, and —
/// crucially for an offline workspace — dependency-free.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    cfg: FaultConfig,
    state: u64,
}

impl FaultInjector {
    pub(crate) fn new(cfg: FaultConfig) -> FaultInjector {
        // Offset the seed so seed 0 still produces a scrambled stream.
        FaultInjector {
            cfg,
            state: cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub(crate) fn config(&self) -> FaultConfig {
        self.cfg
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One Bernoulli draw at `permille`/1000. Always consumes one draw so
    /// the stream stays aligned across differently-configured runs.
    fn roll(&mut self, permille: u32) -> bool {
        let draw = self.next_u64() % 1000;
        permille > 0 && draw < u64::from(permille)
    }

    pub(crate) fn roll_read_fail(&mut self) -> bool {
        let p = self.cfg.read_fail_permille;
        self.roll(p)
    }

    pub(crate) fn roll_write_fail(&mut self) -> bool {
        let p = self.cfg.write_fail_permille;
        self.roll(p)
    }

    pub(crate) fn roll_torn_write(&mut self) -> bool {
        let p = self.cfg.torn_write_permille;
        self.roll(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = FaultInjector::new(FaultConfig::uniform(7, 100));
        let mut b = FaultInjector::new(FaultConfig::uniform(7, 100));
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len(), "no short cycles");
        let mut c = FaultInjector::new(FaultConfig::uniform(8, 100));
        assert_ne!(c.next_u64(), xs[0], "different seed, different stream");
    }

    #[test]
    fn roll_rate_is_plausible() {
        // 100‰ over 10 000 draws: expect ~1000 hits; accept a wide band.
        let mut inj = FaultInjector::new(FaultConfig::uniform(42, 100));
        let hits = (0..10_000).filter(|_| inj.roll(100)).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
        // Zero rate never fires.
        let mut inj = FaultInjector::new(FaultConfig::uniform(42, 0));
        assert!((0..10_000).all(|_| !inj.roll(0)));
    }

    #[test]
    fn stats_arithmetic_and_display() {
        let a = FaultStats {
            injected_read_faults: 2,
            injected_write_faults: 1,
            torn_writes: 1,
            checksum_failures: 1,
            retries: 3,
            recovered: 2,
            exhausted: 1,
            backoff_steps: 7,
        };
        assert_eq!(a.injected(), 3);
        assert!(a.any());
        assert!(!FaultStats::ZERO.any());
        let sum = a + a;
        assert_eq!(sum.retries, 6);
        assert_eq!((sum - a), a);
        assert_eq!((a - sum).retries, 0, "saturating");
        let mut acc = FaultStats::ZERO;
        acc += a;
        assert_eq!(acc, a);
        let s = a.to_string();
        assert!(s.contains("2r/1w") && s.contains("recovered"));
    }

    #[test]
    fn uniform_and_noop() {
        let c = FaultConfig::uniform(3, 50);
        assert_eq!(c.read_fail_permille, 50);
        assert_eq!(c.torn_write_permille, 50);
        assert!(!c.is_noop());
        assert!(FaultConfig::uniform(3, 0).is_noop());
    }
}
