//! Contiguous files over the simulated disk.

use crate::disk::{PageId, SharedDisk};
use crate::error::{Result, StorageError};

/// A contiguous range of pages `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    start: PageId,
    len: u64,
}

impl PageRange {
    /// Builds a range.
    pub fn new(start: PageId, len: u64) -> PageRange {
        PageRange { start, len }
    }

    /// First page of the range.
    pub fn start(&self) -> PageId {
        self.start
    }

    /// Number of pages in the range.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th page of the range (panics if out of range).
    pub fn page(&self, i: u64) -> PageId {
        assert!(
            i < self.len,
            "page index {i} out of extent of {} pages",
            self.len
        );
        PageId(self.start.0 + i)
    }

    /// Iterates the page ids in physical order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.len).map(move |i| PageId(self.start.0 + i))
    }
}

/// An append-only file occupying one contiguous reserved extent.
///
/// The extent is reserved up-front (`capacity` pages); appends fill it in
/// physical order, so a full scan costs one random access plus
/// `len − 1` sequential accesses — the paper's model of reading a
/// partition, a sorted run, or a base relation.
#[derive(Debug, Clone)]
pub struct FileHandle {
    disk: SharedDisk,
    extent: PageRange,
    len: u64,
}

impl FileHandle {
    /// Creates a file by reserving `capacity` contiguous pages.
    pub fn create(disk: &SharedDisk, capacity: u64) -> FileHandle {
        let extent = disk.alloc(capacity);
        FileHandle {
            disk: disk.clone(),
            extent,
            len: 0,
        }
    }

    /// Number of pages appended so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no pages have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reserved capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.extent.len()
    }

    /// The file's extent.
    pub fn extent(&self) -> PageRange {
        self.extent
    }

    /// The `i`-th written page id.
    pub fn page_id(&self, i: u64) -> Result<PageId> {
        if i < self.len {
            Ok(self.extent.page(i))
        } else {
            Err(StorageError::PageOutOfBounds {
                page: i,
                device_pages: self.len,
            })
        }
    }

    /// Appends one page of data, charging one write.
    pub fn append(&mut self, data: Vec<u8>) -> Result<PageId> {
        if self.len == self.extent.len() {
            return Err(StorageError::ExtentOverflow {
                capacity: self.extent.len(),
            });
        }
        let pid = self.extent.page(self.len);
        self.disk.write(pid, data)?;
        self.len += 1;
        Ok(pid)
    }

    /// Reads the `i`-th page, charging one read.
    pub fn read(&self, i: u64) -> Result<Vec<u8>> {
        self.disk.read(self.page_id(i)?)
    }

    /// Rewrites the `i`-th (already appended) page in place.
    pub fn overwrite(&mut self, i: u64, data: Vec<u8>) -> Result<()> {
        self.disk.write(self.page_id(i)?, data)
    }

    /// Truncates the file to zero pages (address space stays reserved).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The shared disk this file lives on.
    pub fn disk(&self) -> &SharedDisk {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_range_indexing() {
        let r = PageRange::new(PageId(10), 3);
        assert_eq!(r.page(0), PageId(10));
        assert_eq!(r.page(2), PageId(12));
        assert_eq!(
            r.pages().collect::<Vec<_>>(),
            vec![PageId(10), PageId(11), PageId(12)]
        );
        assert!(!r.is_empty());
        assert!(PageRange::new(PageId(0), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn page_range_bounds() {
        PageRange::new(PageId(0), 2).page(2);
    }

    #[test]
    fn append_fills_sequentially() {
        let disk = SharedDisk::new(64);
        let mut f = FileHandle::create(&disk, 4);
        for i in 0..4u8 {
            f.append(vec![i; 64]).unwrap();
        }
        assert_eq!(f.len(), 4);
        let s = disk.stats();
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.seq_writes, 3);
        assert!(matches!(
            f.append(vec![0; 64]),
            Err(StorageError::ExtentOverflow { capacity: 4 })
        ));
    }

    #[test]
    fn scan_costs_one_seek() {
        let disk = SharedDisk::new(64);
        let mut f = FileHandle::create(&disk, 8);
        for _ in 0..8 {
            f.append(vec![1; 64]).unwrap();
        }
        disk.reset_stats();
        for i in 0..8 {
            f.read(i).unwrap();
        }
        let s = disk.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 7);
    }

    #[test]
    fn read_past_len_fails() {
        let disk = SharedDisk::new(64);
        let mut f = FileHandle::create(&disk, 4);
        f.append(vec![1; 64]).unwrap();
        assert!(f.read(1).is_err());
        assert!(f.read(0).is_ok());
    }

    #[test]
    fn overwrite_in_place() {
        let disk = SharedDisk::new(64);
        let mut f = FileHandle::create(&disk, 2);
        f.append(vec![1; 64]).unwrap();
        f.overwrite(0, vec![2; 64]).unwrap();
        assert_eq!(f.read(0).unwrap()[0], 2);
        assert!(f.overwrite(1, vec![3; 64]).is_err());
    }

    #[test]
    fn clear_resets_length_not_capacity() {
        let disk = SharedDisk::new(64);
        let mut f = FileHandle::create(&disk, 2);
        f.append(vec![1; 64]).unwrap();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.capacity(), 2);
        f.append(vec![2; 64]).unwrap();
        assert_eq!(f.read(0).unwrap()[0], 2);
    }

    #[test]
    fn two_files_do_not_overlap() {
        let disk = SharedDisk::new(64);
        let mut a = FileHandle::create(&disk, 2);
        let mut b = FileHandle::create(&disk, 2);
        a.append(vec![1; 64]).unwrap();
        b.append(vec![2; 64]).unwrap();
        assert_eq!(a.read(0).unwrap()[0], 1);
        assert_eq!(b.read(0).unwrap()[0], 2);
        assert_ne!(a.extent().start(), b.extent().start());
    }
}
