//! Schema-aware tuple files.
//!
//! A [`HeapFile`] is the on-disk form of a valid-time relation: a
//! contiguous, page-packed sequence of encoded tuples in load order. All
//! join algorithms consume relations as heap files and read them at page
//! granularity, which is what makes their I/O statistics meaningful.

use crate::disk::{PageId, SharedDisk};
use crate::error::Result;
use crate::file::FileHandle;
use crate::page::PageBuf;
use std::sync::Arc;
use vtjoin_core::{Chronon, Relation, Schema, Tuple};

/// Per-page valid-time zone map: the minimum starting and maximum ending
/// chronon of the tuples on the page. Catalog metadata, maintained at
/// write time for free; readers use it to skip pages that cannot contain
/// matching tuples (the sort-merge join's backing-up path does exactly
/// this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageZone {
    /// Smallest `Vs` on the page.
    pub min_start: Chronon,
    /// Largest `Ve` on the page.
    pub max_end: Chronon,
}

/// A valid-time relation stored on the simulated disk.
#[derive(Debug, Clone)]
pub struct HeapFile {
    schema: Arc<Schema>,
    file: FileHandle,
    tuple_count: u64,
    /// Catalog metadata: number of tuples on each page (its prefix sums map
    /// tuple index → page). Free to consult, like any catalog statistic.
    page_counts: Vec<u32>,
    /// Catalog metadata: per-page valid-time zone maps.
    page_zones: Vec<PageZone>,
}

impl HeapFile {
    /// Bulk-loads an in-memory relation onto `disk`, packing pages in
    /// insertion order. The extent is sized exactly.
    pub fn bulk_load(disk: &SharedDisk, relation: &Relation) -> Result<HeapFile> {
        let mut writer = HeapWriter::create(
            disk,
            Arc::clone(relation.schema()),
            Self::pages_needed(disk.page_size(), relation.tuples()),
        );
        for t in relation.iter() {
            writer.push(t)?;
        }
        writer.finish()
    }

    /// Exact number of pages the given tuples occupy when packed in order.
    pub fn pages_needed(page_size: usize, tuples: &[Tuple]) -> u64 {
        let mut pages = 0u64;
        let mut used = 0usize;
        let cap = PageBuf::capacity_bytes(page_size);
        for t in tuples {
            let n = crate::codec::encoded_len(t);
            if used == 0 || used + n > cap {
                pages += 1;
                used = n;
            } else {
                used += n;
            }
        }
        pages
    }

    /// The relation schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of pages occupied.
    pub fn pages(&self) -> u64 {
        self.file.len()
    }

    /// Number of tuples stored.
    pub fn tuples(&self) -> u64 {
        self.tuple_count
    }

    /// The underlying shared disk.
    pub fn disk(&self) -> &SharedDisk {
        self.file.disk()
    }

    /// Physical id of the `i`-th page.
    pub fn page_id(&self, i: u64) -> Result<PageId> {
        self.file.page_id(i)
    }

    /// Reads and decodes the `i`-th page (charging one read).
    pub fn read_page(&self, i: u64) -> Result<Vec<Tuple>> {
        let bytes = self.file.read(i)?;
        PageBuf::decode_page(&bytes)
    }

    /// A page-granular sequential reader.
    pub fn reader(&self) -> HeapReader<'_> {
        HeapReader {
            heap: self,
            next: 0,
        }
    }

    /// Catalog metadata: number of tuples stored on page `i`.
    pub fn tuples_on_page(&self, i: u64) -> u32 {
        self.page_counts[i as usize]
    }

    /// Catalog metadata: the valid-time zone map of page `i`.
    pub fn page_zone(&self, i: u64) -> PageZone {
        self.page_zones[i as usize]
    }

    /// Catalog metadata: the hull of all stored valid times — the union of
    /// every page's zone map. `None` for an empty file. Free to consult
    /// (no I/O), which makes it the natural seed for sampling-free
    /// equal-width partitioning when sampling I/O is unavailable.
    pub fn time_hull(&self) -> Option<vtjoin_core::Interval> {
        let min = self.page_zones.iter().map(|z| z.min_start).min()?;
        let max = self.page_zones.iter().map(|z| z.max_end).max()?;
        vtjoin_core::Interval::new(min, max).ok()
    }

    /// Catalog metadata: the page holding the `idx`-th tuple (in load
    /// order) and its slot on that page.
    pub fn locate_tuple(&self, idx: u64) -> Option<(u64, u32)> {
        if idx >= self.tuple_count {
            return None;
        }
        let mut remaining = idx;
        // Fixed-size-tuple files have uniform counts; fast path the common
        // case, fall back to a linear walk otherwise.
        if let Some(&first) = self.page_counts.first() {
            let per = u64::from(first);
            if let Some(quot) = idx.checked_div(per) {
                let guess = quot as usize;
                if guess < self.page_counts.len() {
                    let before: u64 = guess as u64 * per;
                    let uniform_prefix = self.page_counts[..guess]
                        .iter()
                        .all(|&c| u64::from(c) == per);
                    if uniform_prefix && idx - before < u64::from(self.page_counts[guess]) {
                        return Some((guess as u64, (idx - before) as u32));
                    }
                }
            }
        }
        for (p, &c) in self.page_counts.iter().enumerate() {
            if remaining < u64::from(c) {
                return Some((p as u64, remaining as u32));
            }
            remaining -= u64::from(c);
        }
        None
    }

    /// Reads the entire file back into an in-memory relation (charging a
    /// full scan).
    pub fn read_all(&self) -> Result<Relation> {
        let mut tuples = Vec::with_capacity(self.tuple_count as usize);
        for i in 0..self.pages() {
            tuples.extend(self.read_page(i)?);
        }
        Ok(Relation::from_parts_unchecked(
            Arc::clone(&self.schema),
            tuples,
        ))
    }
}

/// Zone value before any tuple lands on the page.
const EMPTY_ZONE: PageZone = PageZone {
    min_start: Chronon::MAX,
    max_end: Chronon::MIN,
};

/// Incremental heap-file loader.
#[derive(Debug)]
pub struct HeapWriter {
    schema: Arc<Schema>,
    file: FileHandle,
    page: PageBuf,
    tuple_count: u64,
    page_counts: Vec<u32>,
    page_zones: Vec<PageZone>,
    current_zone: PageZone,
    /// Completed page images not yet on disk, flushed `flush_batch` at a
    /// time. Grace partitioning divides its buffer among the partitions and
    /// flushes a partition's pages together when its share fills (§3.2).
    pending: Vec<Vec<u8>>,
    flush_batch: usize,
}

impl HeapWriter {
    /// Starts a writer over a fresh extent of `capacity_pages`.
    pub fn create(disk: &SharedDisk, schema: Arc<Schema>, capacity_pages: u64) -> HeapWriter {
        let file = FileHandle::create(disk, capacity_pages);
        let page = PageBuf::new(disk.page_size());
        HeapWriter {
            schema,
            file,
            page,
            tuple_count: 0,
            page_counts: Vec::new(),
            page_zones: Vec::new(),
            current_zone: EMPTY_ZONE,
            pending: Vec::new(),
            flush_batch: 1,
        }
    }

    /// Sets the flush batch: completed pages accumulate in memory and are
    /// written `batch` at a time (one contiguous burst: typically one
    /// random write followed by `batch − 1` sequential writes).
    #[must_use]
    pub fn with_flush_batch(mut self, batch: usize) -> HeapWriter {
        self.flush_batch = batch.max(1);
        self
    }

    /// Number of completed pages currently buffered in memory.
    pub fn pending_pages(&self) -> usize {
        self.pending.len()
    }

    fn flush_pending(&mut self) -> Result<()> {
        for bytes in self.pending.drain(..) {
            self.file.append(bytes)?;
        }
        Ok(())
    }

    /// Appends one tuple, completing a page when full and flushing
    /// completed pages per the flush batch.
    pub fn push(&mut self, t: &Tuple) -> Result<()> {
        if !self.page.try_push(t)? {
            let count = self.page.count() as u32;
            let bytes = self.page.take();
            self.pending.push(bytes);
            self.page_counts.push(count);
            self.page_zones.push(self.current_zone);
            self.current_zone = EMPTY_ZONE;
            if self.pending.len() >= self.flush_batch {
                self.flush_pending()?;
            }
            let fit = self.page.try_push(t)?;
            debug_assert!(fit, "tuple must fit an empty page");
        }
        self.current_zone.min_start = self.current_zone.min_start.min(t.valid().start());
        self.current_zone.max_end = self.current_zone.max_end.max(t.valid().end());
        self.tuple_count += 1;
        Ok(())
    }

    /// Flushes buffered and partial pages and returns the finished heap
    /// file.
    pub fn finish(mut self) -> Result<HeapFile> {
        if !self.page.is_empty() {
            let count = self.page.count() as u32;
            let bytes = self.page.take();
            self.pending.push(bytes);
            self.page_counts.push(count);
            self.page_zones.push(self.current_zone);
        }
        self.flush_pending()?;
        Ok(HeapFile {
            schema: self.schema,
            file: self.file,
            tuple_count: self.tuple_count,
            page_counts: self.page_counts,
            page_zones: self.page_zones,
        })
    }
}

/// Sequential page-at-a-time reader over a heap file.
#[derive(Debug)]
pub struct HeapReader<'a> {
    heap: &'a HeapFile,
    next: u64,
}

impl HeapReader<'_> {
    /// Reads the next page of tuples, or `None` at end of file.
    pub fn next_page(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.next >= self.heap.pages() {
            return Ok(None);
        }
        let page = self.heap.read_page(self.next)?;
        self.next += 1;
        Ok(Some(page))
    }

    /// Index of the next page to be read.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Repositions the reader (the next read will be a random access
    /// unless it happens to follow the disk head).
    pub fn seek(&mut self, page: u64) {
        self.next = page;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vtjoin_core::{AttrDef, AttrType, Interval, Value};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![AttrDef::new("k", AttrType::Int)])
            .unwrap()
            .into_shared()
    }

    fn relation(n: i64) -> Relation {
        let tuples = (0..n)
            .map(|k| Tuple::new(vec![Value::Int(k)], Interval::from_raw(k, k + 5).unwrap()))
            .collect();
        Relation::from_parts_unchecked(schema(), tuples)
    }

    #[test]
    fn bulk_load_round_trips() {
        let disk = SharedDisk::new(128);
        let r = relation(50);
        let heap = HeapFile::bulk_load(&disk, &r).unwrap();
        assert_eq!(heap.tuples(), 50);
        // 26-byte records, 126-byte capacity → 4 per page → 13 pages.
        assert_eq!(heap.pages(), 13);
        let back = heap.read_all().unwrap();
        assert!(back.multiset_eq(&r));
        // Order must be exactly preserved too.
        assert_eq!(back.tuples(), r.tuples());
    }

    #[test]
    fn pages_needed_matches_actual() {
        let disk = SharedDisk::new(128);
        for n in [0i64, 1, 3, 4, 5, 17, 100] {
            let r = relation(n);
            let predicted = HeapFile::pages_needed(128, r.tuples());
            let heap = HeapFile::bulk_load(&disk, &r).unwrap();
            assert_eq!(heap.pages(), predicted, "n = {n}");
        }
    }

    #[test]
    fn load_is_one_seek_then_sequential() {
        let disk = SharedDisk::new(128);
        let r = relation(40); // 10 pages
        disk.reset_stats();
        let heap = HeapFile::bulk_load(&disk, &r).unwrap();
        let s = disk.stats();
        assert_eq!(heap.pages(), 10);
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.seq_writes, 9);
        assert_eq!(s.random_reads + s.seq_reads, 0);
    }

    #[test]
    fn full_scan_costs_one_seek() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(40)).unwrap();
        disk.reset_stats();
        let mut rd = heap.reader();
        let mut n = 0;
        while let Some(page) = rd.next_page().unwrap() {
            n += page.len();
        }
        assert_eq!(n, 40);
        let s = disk.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 9);
    }

    #[test]
    fn reader_seek_changes_position() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(40)).unwrap();
        let mut rd = heap.reader();
        rd.seek(9);
        let last = rd.next_page().unwrap().unwrap();
        assert_eq!(last.len(), 4);
        assert!(rd.next_page().unwrap().is_none());
        assert_eq!(rd.position(), 10);
    }

    #[test]
    fn time_hull_spans_all_zones_without_io() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(40)).unwrap();
        disk.reset_stats();
        let hull = heap.time_hull().unwrap();
        assert_eq!(disk.stats().total_ios(), 0, "catalog reads are free");
        assert_eq!(hull.start().value(), 0);
        assert_eq!(hull.end().value(), 39 + 5);
        let empty = HeapFile::bulk_load(&disk, &relation(0)).unwrap();
        assert!(empty.time_hull().is_none());
    }

    #[test]
    fn empty_relation_occupies_no_pages() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(0)).unwrap();
        assert_eq!(heap.pages(), 0);
        assert_eq!(heap.tuples(), 0);
        assert!(heap.read_all().unwrap().is_empty());
        let mut rd = heap.reader();
        assert!(rd.next_page().unwrap().is_none());
    }

    #[test]
    fn flush_batching_groups_writes() {
        // Two writers interleaving on one disk: with batch 1 every write is
        // random; with batch 4 each burst is 1 random + 3 sequential.
        let run = |batch: usize| {
            let disk = SharedDisk::new(128);
            let mut a = HeapWriter::create(&disk, schema(), 64).with_flush_batch(batch);
            let mut b = HeapWriter::create(&disk, schema(), 64).with_flush_batch(batch);
            disk.reset_stats();
            for k in 0..64 {
                let t = Tuple::new(vec![Value::Int(k)], Interval::from_raw(0, 0).unwrap());
                a.push(&t).unwrap();
                b.push(&t).unwrap();
            }
            let ha = a.finish().unwrap();
            let hb = b.finish().unwrap();
            assert_eq!(ha.tuples() + hb.tuples(), 128);
            disk.stats()
        };
        let unbatched = run(1);
        let batched = run(4);
        assert!(
            batched.random_writes < unbatched.random_writes,
            "batched {} !< unbatched {}",
            batched.random_writes,
            unbatched.random_writes
        );
        assert!(batched.seq_writes > unbatched.seq_writes);
        assert_eq!(batched.total_ios(), unbatched.total_ios());
    }

    #[test]
    fn zone_maps_bound_page_contents() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(10)).unwrap();
        for p in 0..heap.pages() {
            let zone = heap.page_zone(p);
            let tuples = heap.read_page(p).unwrap();
            for t in &tuples {
                assert!(zone.min_start <= t.valid().start());
                assert!(zone.max_end >= t.valid().end());
            }
            // Tight bounds: some tuple attains each extreme.
            assert!(tuples.iter().any(|t| t.valid().start() == zone.min_start));
            assert!(tuples.iter().any(|t| t.valid().end() == zone.max_end));
        }
    }

    #[test]
    fn catalog_metadata_locates_tuples() {
        let disk = SharedDisk::new(128);
        let heap = HeapFile::bulk_load(&disk, &relation(10)).unwrap(); // 4+4+2
        assert_eq!(heap.tuples_on_page(0), 4);
        assert_eq!(heap.tuples_on_page(2), 2);
        assert_eq!(heap.locate_tuple(0), Some((0, 0)));
        assert_eq!(heap.locate_tuple(3), Some((0, 3)));
        assert_eq!(heap.locate_tuple(4), Some((1, 0)));
        assert_eq!(heap.locate_tuple(9), Some((2, 1)));
        assert_eq!(heap.locate_tuple(10), None);
        // The located slot really holds that tuple.
        let (p, slot) = heap.locate_tuple(7).unwrap();
        let page = heap.read_page(p).unwrap();
        assert_eq!(page[slot as usize], relation(10).tuples()[7]);
    }

    #[test]
    fn writer_incremental_api() {
        let disk = SharedDisk::new(128);
        let mut w = HeapWriter::create(&disk, schema(), 64);
        for k in 0..9 {
            w.push(&Tuple::new(
                vec![Value::Int(k)],
                Interval::from_raw(0, 0).unwrap(),
            ))
            .unwrap();
        }
        let heap = w.finish().unwrap();
        assert_eq!(heap.tuples(), 9);
        assert_eq!(heap.pages(), 3); // 4 + 4 + 1
        assert_eq!(heap.read_page(2).unwrap().len(), 1);
    }
}
