//! # vtjoin-storage — a paged-storage simulator with honest I/O accounting
//!
//! The paper's performance study (§4) measures evaluation cost as **the
//! number of I/O operations performed, distinguishing between the higher
//! cost of random access and the lower cost of sequential access**. This
//! crate provides the substrate that makes such measurements from *real
//! executions*:
//!
//! * [`disk::DiskSim`] — a linear page-addressed device. An access is
//!   *sequential* iff it targets the page immediately following the
//!   previously accessed page (the disk head position); every other access
//!   is *random*. [`stats::IoStats`] accumulates the four counters and
//!   prices them under a configurable random:sequential cost ratio.
//! * [`page`] — fixed-size record pages with a compact binary tuple
//!   encoding (cursor primitives live in [`bufext`]).
//! * [`mod@file`] — contiguous extents, so "read a partition" naturally costs
//!   one random seek plus `k−1` sequential reads, exactly the paper's
//!   accounting.
//! * [`heap`] — schema-aware tuple files with bulk load and page-granular
//!   scans; the unit all join algorithms operate on.
//! * [`buffer`] — a pin/unpin LRU buffer pool used by the engine layer.
//!
//! Everything is deterministic: running the same algorithm on the same
//! input yields bit-identical I/O statistics. That determinism extends
//! to failure: [`faults`] injects seeded transient read/write faults and
//! torn-page corruption, pages carry checksums so corruption is detected
//! at decode time, and the disk absorbs transient faults under a bounded
//! retry-with-backoff policy before surfacing a typed error.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bufext;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod faults;
pub mod file;
pub mod heap;
pub mod page;
pub mod reserve;
pub mod stats;

pub use buffer::{BufferPool, BufferPoolStats};
pub use disk::{AccessKind, DiskSim, PageId, SharedDisk};
pub use error::{Result, StorageError};
pub use faults::{FaultConfig, FaultStats, RetryPolicy};
pub use file::{FileHandle, PageRange};
pub use heap::{HeapFile, HeapReader, HeapWriter};
pub use page::{PageBuf, PAGE_HEADER_BYTES};
pub use reserve::{
    Admitted, PagePool, PageReservation, PoolStats, ReserveError, ReserveRequest, PRIORITY_CASUAL,
    PRIORITY_NORMAL, PRIORITY_URGENT,
};
pub use stats::{CostRatio, IoStats};
