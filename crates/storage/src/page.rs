//! Record pages.
//!
//! A page is `[u16 record-count][u32 checksum][records…]` with records
//! packed back-to-back. Pages are the unit of I/O; the join algorithms
//! reason about buffer budgets purely in page counts. The checksum
//! covers the full padded page image (see [`codec::page_checksum`]) and
//! is verified by [`PageBuf::decode_page`], so a torn write surfaces as
//! a typed [`StorageError::Corrupt`] instead of garbage tuples.

use crate::bufext::{Buf, BufMut};
use crate::codec;
use crate::error::{Result, StorageError};
use vtjoin_core::Tuple;

/// Bytes reserved for the page header (record count + checksum).
pub const PAGE_HEADER_BYTES: usize = 6;

/// An in-memory page being filled with encoded tuples.
#[derive(Debug, Clone)]
pub struct PageBuf {
    page_size: usize,
    data: Vec<u8>,
    count: u16,
}

impl PageBuf {
    /// An empty page buffer for pages of `page_size` bytes.
    pub fn new(page_size: usize) -> PageBuf {
        assert!(page_size > PAGE_HEADER_BYTES);
        let mut data = Vec::with_capacity(page_size);
        data.put_u16_le(0);
        data.put_u32_le(0);
        PageBuf {
            page_size,
            data,
            count: 0,
        }
    }

    /// Usable payload bytes per page of `page_size` bytes.
    pub fn capacity_bytes(page_size: usize) -> usize {
        page_size - PAGE_HEADER_BYTES
    }

    /// Number of records currently in the page.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes still available for records.
    pub fn remaining_bytes(&self) -> usize {
        self.page_size - self.data.len()
    }

    /// Tries to append a tuple; returns `false` when it does not fit.
    ///
    /// Errors only if the tuple cannot fit even an *empty* page.
    pub fn try_push(&mut self, t: &Tuple) -> Result<bool> {
        let need = codec::encoded_len(t);
        if need > Self::capacity_bytes(self.page_size) {
            return Err(StorageError::RecordTooLarge {
                record: need,
                capacity: Self::capacity_bytes(self.page_size),
            });
        }
        if need > self.remaining_bytes() {
            return Ok(false);
        }
        codec::encode_into(t, &mut self.data);
        self.count += 1;
        let count = self.count;
        self.data[0..2].copy_from_slice(&count.to_le_bytes());
        Ok(true)
    }

    /// Finishes the page, returning its full `page_size` image (padded
    /// with zeroes, checksum sealed) and leaving the buffer empty and
    /// reusable.
    pub fn take(&mut self) -> Vec<u8> {
        let mut fresh = Vec::with_capacity(self.page_size);
        fresh.put_u16_le(0);
        fresh.put_u32_le(0);
        self.count = 0;
        let mut page = std::mem::replace(&mut self.data, fresh);
        page.resize(self.page_size, 0);
        let sum = codec::page_checksum(&page);
        page[2..6].copy_from_slice(&sum.to_le_bytes());
        page
    }

    /// Decodes every tuple in a page image, verifying the checksum first.
    pub fn decode_page(bytes: &[u8]) -> Result<Vec<Tuple>> {
        if bytes.len() < PAGE_HEADER_BYTES {
            return Err(StorageError::Corrupt("page shorter than header".into()));
        }
        let stored = u32::from_le_bytes(bytes[2..6].try_into().expect("4 bytes"));
        let computed = codec::page_checksum(bytes);
        if stored != computed {
            return Err(StorageError::Corrupt(format!(
                "page checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        let mut cursor: &[u8] = bytes;
        let count = cursor.get_u16_le() as usize;
        let _checksum = cursor.get_u32_le();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(codec::decode(&mut cursor)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtjoin_core::{Interval, Value};

    fn t(k: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k)], Interval::from_raw(0, 1).unwrap())
    }

    #[test]
    fn push_until_full_then_take() {
        let mut p = PageBuf::new(128);
        let mut pushed = 0;
        while p.try_push(&t(pushed)).unwrap() {
            pushed += 1;
        }
        // record = 16 + 1 + 9 = 26 bytes; capacity = 122 → 4 records.
        assert_eq!(pushed, 4);
        assert_eq!(p.count(), 4);
        let bytes = p.take();
        assert!(p.is_empty());
        let decoded = PageBuf::decode_page(&bytes).unwrap();
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded[2], t(2));
    }

    #[test]
    fn page_reusable_after_take() {
        let mut p = PageBuf::new(128);
        assert!(p.try_push(&t(1)).unwrap());
        let _ = p.take();
        assert!(p.try_push(&t(2)).unwrap());
        let decoded = PageBuf::decode_page(&p.take()).unwrap();
        assert_eq!(decoded, vec![t(2)]);
    }

    #[test]
    fn oversized_record_is_an_error() {
        let mut p = PageBuf::new(64);
        let big = Tuple::new(
            vec![Value::Bytes(vec![0; 100].into())],
            Interval::from_raw(0, 0).unwrap(),
        );
        assert!(matches!(
            p.try_push(&big),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn empty_page_round_trip() {
        let mut p = PageBuf::new(64);
        let bytes = p.take();
        assert_eq!(PageBuf::decode_page(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PageBuf::decode_page(&[]).is_err());
        // Claims 5 records but has none.
        let mut bytes = vec![];
        bytes.put_u16_le(5);
        assert!(PageBuf::decode_page(&bytes).is_err());
    }

    #[test]
    fn paper_geometry_32_tuples_per_4k_page() {
        // 128-byte records, 4096-byte page → 31 fit (4090 usable bytes).
        // The experiment layout therefore pads records to 127 bytes so that
        // exactly 32 fit; verify both facts.
        let pad127 = 127 - (16 + 1 + 9 + 3);
        let rec127 = Tuple::new(
            vec![Value::Int(1), Value::Bytes(vec![0; pad127].into())],
            Interval::from_raw(0, 0).unwrap(),
        );
        let mut p = PageBuf::new(4096);
        let mut n = 0;
        while p.try_push(&rec127).unwrap() {
            n += 1;
        }
        assert_eq!(n, 32);
    }
}
