//! Shared buffer-pool reservation accounting with fair, priority-aware
//! admission.
//!
//! The join algorithms budget their buffer pages per run ([`crate::buffer`]
//! caches pages for one caller); a multi-query service needs the level
//! above: a single page budget shared by every query *in flight*, so that
//! admitting one more join never overcommits the memory the configuration
//! promised. [`PagePool`] is that ledger. It moves no data — heap files
//! still read through the simulated disk — it only accounts for who holds
//! how many pages, blocks admissions that do not fit, and refuses outright
//! the cases that could otherwise deadlock or starve the queue:
//!
//! * a request larger than the whole pool can never be satisfied and is
//!   rejected immediately ([`ReserveError::TooLarge`]) instead of waiting
//!   forever;
//! * once `max_waiting` requests are already blocked, further requests are
//!   rejected ([`ReserveError::Saturated`]) instead of growing the queue
//!   without bound under memory pressure;
//! * a request carrying a deadline that expires while it is still queued
//!   is withdrawn and rejected ([`ReserveError::DeadlineExceeded`]) so it
//!   never holds a queue slot it can no longer use.
//!
//! ## Fairness: the ticket queue
//!
//! Admission is **ticket-ordered within priority class**. Every blocked
//! request takes a monotonically increasing ticket; the wait queue is kept
//! sorted by `(priority, ticket)` and grants are *pumped* strictly in that
//! order — the grant loop stops at the first waiter that does not fit, so
//! nobody behind a blocked head can slip past it. The fast path obeys the
//! same rule: a newly-arriving request is granted immediately only when no
//! waiter of **equal or higher priority** (numerically `<=`) is queued.
//! This fixes, by construction, the starvation bug where a steady stream
//! of small fast-path grants kept a queued large request blocked
//! indefinitely: the small arrivals now queue behind it (or are refused on
//! the non-blocking path). A *higher*-priority arrival may still overtake
//! queued lower-priority waiters — that is what priority classes are for —
//! but never a peer.
//!
//! Reservations are RAII: dropping a [`PageReservation`] returns its pages
//! and pumps the queue (wake-all, because granted waiters identify
//! themselves by ticket).

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Highest-urgency admission class (numerically smallest).
pub const PRIORITY_URGENT: u8 = 0;
/// Default admission class for requests that may block.
pub const PRIORITY_NORMAL: u8 = 1;
/// Lowest-urgency admission class; never overtakes anyone.
pub const PRIORITY_CASUAL: u8 = 2;

/// Lifetime counters of a [`PagePool`]; all monotone, deterministic given
/// a deterministic admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Reservations granted (immediately or after waiting).
    pub granted: u64,
    /// Reservations granted only after blocking at least once.
    pub waited: u64,
    /// Requests rejected because they exceed the pool capacity outright.
    pub rejected_oversize: u64,
    /// Requests rejected because the wait queue was full.
    pub rejected_saturated: u64,
    /// Requests withdrawn because their deadline expired while queued.
    pub rejected_deadline: u64,
    /// Reservations returned to the pool.
    pub released: u64,
    /// Largest number of pages ever simultaneously reserved.
    pub pages_high_water: u64,
    /// Largest number of requests ever simultaneously blocked waiting.
    pub queue_high_water: u64,
}

/// One blocked admission request, keyed for strict `(priority, ticket)`
/// ordering.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    ticket: u64,
    priority: u8,
    pages: u64,
}

#[derive(Debug, Default)]
struct PoolState {
    in_flight: u64,
    next_ticket: u64,
    /// Blocked requests, sorted by `(priority, ticket)`. Invariant: after
    /// every state change the head does not fit (else `pump` would have
    /// granted it), so the fast path only needs the priority check.
    queue: Vec<Waiter>,
    /// Tickets `pump` has granted whose owner threads have not yet picked
    /// the grant up; their pages are already charged to `in_flight`.
    granted_tickets: Vec<u64>,
    stats: PoolStats,
}

#[derive(Debug)]
struct PoolShared {
    capacity: u64,
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A blocking reservation request: how many pages, how urgent, how long
/// the caller is willing to stay queued, and how many peers may queue.
#[derive(Debug, Clone, Copy)]
pub struct ReserveRequest {
    /// Pages to reserve.
    pub pages: u64,
    /// Admission class; numerically smaller is more urgent. Within a
    /// class, admission is strictly ticket- (arrival-) ordered.
    pub priority: u8,
    /// Queue bound: arriving when this many requests are already blocked
    /// is an immediate [`ReserveError::Saturated`].
    pub max_waiting: u64,
    /// Longest the request may stay queued before it is withdrawn with
    /// [`ReserveError::DeadlineExceeded`]. `None` waits indefinitely.
    pub deadline: Option<Duration>,
}

impl ReserveRequest {
    /// A normal-priority request with no deadline.
    pub fn new(pages: u64, max_waiting: u64) -> ReserveRequest {
        ReserveRequest {
            pages,
            priority: PRIORITY_NORMAL,
            max_waiting,
            deadline: None,
        }
    }
}

/// A granted admission: the reservation plus how it was admitted.
#[derive(Debug)]
pub struct Admitted {
    /// The pages, returned to the pool on drop.
    pub reservation: PageReservation,
    /// Whether the request blocked in the queue before being granted.
    pub waited: bool,
    /// Wall-clock the request spent blocked (0 for immediate grants).
    pub wait_micros: u64,
}

/// Why a reservation was refused. Every variant leaves the caller
/// unblocked — the pool never keeps a request it cannot satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// The request exceeds the pool's total capacity.
    TooLarge {
        /// Pages requested.
        pages: u64,
        /// Total pool capacity.
        capacity: u64,
    },
    /// The bounded wait queue is full.
    Saturated {
        /// Requests already waiting.
        waiting: u64,
        /// The configured queue bound.
        max_waiting: u64,
    },
    /// The request's deadline expired while it was still queued.
    DeadlineExceeded {
        /// How long the request waited before being withdrawn.
        waited_micros: u64,
    },
}

impl std::fmt::Display for ReserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReserveError::TooLarge { pages, capacity } => {
                write!(
                    f,
                    "reservation of {pages} pages exceeds the {capacity}-page pool"
                )
            }
            ReserveError::Saturated {
                waiting,
                max_waiting,
            } => {
                write!(
                    f,
                    "admission queue full ({waiting} waiting, bound {max_waiting})"
                )
            }
            ReserveError::DeadlineExceeded { waited_micros } => {
                write!(
                    f,
                    "deadline expired after {waited_micros} µs in the admission queue"
                )
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// A shared page-budget ledger for concurrent queries. Cheaply clonable;
/// all clones account against the same budget.
#[derive(Debug, Clone)]
pub struct PagePool(Arc<PoolShared>);

impl PagePool {
    /// A pool of `capacity` pages. A zero-capacity pool rejects every
    /// non-zero reservation as oversize.
    pub fn new(capacity: u64) -> PagePool {
        PagePool(Arc::new(PoolShared {
            capacity,
            state: Mutex::new(PoolState::default()),
            cv: Condvar::new(),
        }))
    }

    /// Total capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.0.capacity
    }

    /// Pages currently reserved.
    pub fn in_flight(&self) -> u64 {
        self.lock().in_flight
    }

    /// Requests currently blocked in the admission queue.
    pub fn waiting(&self) -> u64 {
        self.lock().queue.len() as u64
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.0.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reserves `pages` without blocking, at the lowest urgency: any
    /// queued waiter refuses the request (granting it would barge past
    /// someone who arrived earlier). Returns `None` when the pool cannot
    /// grant the request *right now* (oversize requests still fail with
    /// an accounting entry, so callers can distinguish).
    pub fn try_reserve(&self, pages: u64) -> Option<PageReservation> {
        self.try_reserve_prio(pages, u8::MAX)
    }

    /// As [`PagePool::try_reserve`] at an explicit priority: the request
    /// is granted only when it fits *and* no waiter of equal or higher
    /// priority is queued (it may overtake strictly lower-priority
    /// waiters, like the blocking fast path).
    pub fn try_reserve_prio(&self, pages: u64, priority: u8) -> Option<PageReservation> {
        let mut st = self.lock();
        if pages > self.0.capacity {
            st.stats.rejected_oversize += 1;
            return None;
        }
        if st.queue.iter().any(|w| w.priority <= priority) {
            return None;
        }
        if st.in_flight + pages > self.0.capacity {
            return None;
        }
        Self::charge(&mut st, pages, false);
        Some(PageReservation {
            pool: self.clone(),
            pages,
        })
    }

    /// Reserves `pages`, blocking until capacity frees. Equivalent to
    /// [`PagePool::reserve_request`] at [`PRIORITY_NORMAL`] with no
    /// deadline; the returned flag is `true` when the reservation had to
    /// wait (the caller was *queued* rather than admitted immediately).
    pub fn reserve(
        &self,
        pages: u64,
        max_waiting: u64,
    ) -> Result<(PageReservation, bool), ReserveError> {
        self.reserve_request(ReserveRequest::new(pages, max_waiting))
            .map(|a| (a.reservation, a.waited))
    }

    /// Reserves pages under the full admission contract: fails immediately
    /// when the request can never fit ([`ReserveError::TooLarge`]) or when
    /// `max_waiting` requests are already blocked
    /// ([`ReserveError::Saturated`]); otherwise takes a ticket, queues in
    /// `(priority, ticket)` order, and blocks until granted — or until the
    /// deadline expires, which withdraws the ticket
    /// ([`ReserveError::DeadlineExceeded`]).
    ///
    /// The fast path may not barge: an immediately-fitting request is
    /// granted without queueing only when no waiter of equal or higher
    /// priority is blocked, so FIFO order within a class is strict.
    pub fn reserve_request(&self, req: ReserveRequest) -> Result<Admitted, ReserveError> {
        let mut st = self.lock();
        if req.pages > self.0.capacity {
            st.stats.rejected_oversize += 1;
            return Err(ReserveError::TooLarge {
                pages: req.pages,
                capacity: self.0.capacity,
            });
        }
        let blocked_behind = st.queue.iter().any(|w| w.priority <= req.priority);
        if !blocked_behind && st.in_flight + req.pages <= self.0.capacity {
            Self::charge(&mut st, req.pages, false);
            return Ok(Admitted {
                reservation: PageReservation {
                    pool: self.clone(),
                    pages: req.pages,
                },
                waited: false,
                wait_micros: 0,
            });
        }
        if st.queue.len() as u64 >= req.max_waiting {
            st.stats.rejected_saturated += 1;
            return Err(ReserveError::Saturated {
                waiting: st.queue.len() as u64,
                max_waiting: req.max_waiting,
            });
        }

        // Take a ticket and join the queue in (priority, ticket) order.
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        let waiter = Waiter {
            ticket,
            priority: req.priority,
            pages: req.pages,
        };
        let at = st
            .queue
            .partition_point(|w| (w.priority, w.ticket) <= (req.priority, ticket));
        st.queue.insert(at, waiter);
        st.stats.queue_high_water = st.stats.queue_high_water.max(st.queue.len() as u64);

        let started = Instant::now();
        loop {
            if let Some(at) = st.granted_tickets.iter().position(|&t| t == ticket) {
                // `pump` already charged the pages; just pick the grant up.
                st.granted_tickets.swap_remove(at);
                let wait_micros = started.elapsed().as_micros() as u64;
                return Ok(Admitted {
                    reservation: PageReservation {
                        pool: self.clone(),
                        pages: req.pages,
                    },
                    waited: true,
                    wait_micros,
                });
            }
            match req.deadline {
                None => {
                    st = self.0.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Some(deadline) => {
                    let elapsed = started.elapsed();
                    if elapsed >= deadline {
                        // Withdraw the ticket. Removing a (possibly
                        // head-of-line) waiter can unblock those behind it,
                        // so pump before returning.
                        st.queue.retain(|w| w.ticket != ticket);
                        st.stats.rejected_deadline += 1;
                        if Self::pump(&mut st, self.0.capacity) {
                            drop(st);
                            self.0.cv.notify_all();
                        }
                        return Err(ReserveError::DeadlineExceeded {
                            waited_micros: elapsed.as_micros() as u64,
                        });
                    }
                    let (guard, _timeout) = self
                        .0
                        .cv
                        .wait_timeout(st, deadline - elapsed)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    /// Charges an immediate (fast-path) grant.
    fn charge(st: &mut PoolState, pages: u64, waited: bool) {
        st.in_flight += pages;
        st.stats.granted += 1;
        if waited {
            st.stats.waited += 1;
        }
        st.stats.pages_high_water = st.stats.pages_high_water.max(st.in_flight);
    }

    /// Grants queued waiters strictly in `(priority, ticket)` order while
    /// they fit, stopping at the first that does not — the head-of-line
    /// blocking that makes admission starvation-free. Returns whether any
    /// grant was handed out (callers then wake the waiters).
    fn pump(st: &mut PoolState, capacity: u64) -> bool {
        let mut any = false;
        while let Some(w) = st.queue.first().copied() {
            if st.in_flight + w.pages > capacity {
                break;
            }
            st.queue.remove(0);
            Self::charge(st, w.pages, true);
            st.granted_tickets.push(w.ticket);
            any = true;
        }
        any
    }

    fn release(&self, pages: u64) {
        let mut st = self.lock();
        st.in_flight = st.in_flight.saturating_sub(pages);
        st.stats.released += 1;
        Self::pump(&mut st, self.0.capacity);
        drop(st);
        // Wake everyone: granted waiters identify themselves by ticket,
        // and deadline waiters re-check their clocks.
        self.0.cv.notify_all();
    }
}

/// A granted page reservation; pages return to the pool on drop.
#[derive(Debug)]
pub struct PageReservation {
    pool: PagePool,
    pages: u64,
}

impl PageReservation {
    /// Pages this reservation holds.
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl Drop for PageReservation {
    fn drop(&mut self) {
        self.pool.release(self.pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn grants_and_releases() {
        let pool = PagePool::new(10);
        let a = pool.try_reserve(4).unwrap();
        let b = pool.try_reserve(6).unwrap();
        assert_eq!(pool.in_flight(), 10);
        assert!(pool.try_reserve(1).is_none());
        drop(a);
        assert_eq!(pool.in_flight(), 6);
        let c = pool.try_reserve(4).unwrap();
        drop(b);
        drop(c);
        let st = pool.stats();
        assert_eq!(st.granted, 3);
        assert_eq!(st.released, 3);
        assert_eq!(st.pages_high_water, 10);
    }

    #[test]
    fn oversize_is_rejected_not_queued() {
        let pool = PagePool::new(8);
        assert!(matches!(
            pool.reserve(9, 100),
            Err(ReserveError::TooLarge {
                pages: 9,
                capacity: 8
            })
        ));
        assert_eq!(pool.stats().rejected_oversize, 1);
        // Even while the pool is busy, an oversize request never waits.
        let _held = pool.try_reserve(8).unwrap();
        assert!(matches!(
            pool.reserve(9, 100),
            Err(ReserveError::TooLarge { .. })
        ));
    }

    #[test]
    fn saturated_queue_rejects() {
        let pool = PagePool::new(4);
        let held = pool.try_reserve(4).unwrap();
        // Queue bound zero: a full pool rejects instead of waiting.
        assert!(matches!(
            pool.reserve(1, 0),
            Err(ReserveError::Saturated {
                waiting: 0,
                max_waiting: 0
            })
        ));
        assert_eq!(pool.stats().rejected_saturated, 1);
        drop(held);
        let (r, waited) = pool.reserve(1, 0).unwrap();
        assert!(!waited);
        drop(r);
    }

    #[test]
    fn blocked_reservation_wakes_on_release() {
        let pool = PagePool::new(4);
        let held = pool.try_reserve(3).unwrap();
        let done = AtomicU64::new(0);
        thread::scope(|scope| {
            let pool2 = pool.clone();
            let done = &done;
            let h = scope.spawn(move || {
                let (r, waited) = pool2.reserve(2, 8).unwrap();
                assert!(waited, "had to wait for the holder to release");
                done.store(1, Ordering::SeqCst);
                drop(r);
            });
            // Give the waiter time to block, then release.
            while pool.stats().queue_high_water == 0 {
                thread::yield_now();
            }
            assert_eq!(done.load(Ordering::SeqCst), 0);
            drop(held);
            h.join().unwrap();
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
        let st = pool.stats();
        assert_eq!(st.waited, 1);
        assert_eq!(st.queue_high_water, 1);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn concurrent_reservations_never_overcommit() {
        let pool = PagePool::new(10);
        let peak = AtomicU64::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                let pool = pool.clone();
                let peak = &peak;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let (r, _) = pool.reserve(3, 64).unwrap();
                        let now = pool.in_flight();
                        peak.fetch_max(now, Ordering::SeqCst);
                        assert!(now <= 10, "overcommitted: {now}");
                        drop(r);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 10);
        let st = pool.stats();
        assert_eq!(st.granted, 400);
        assert_eq!(st.released, 400);
        assert_eq!(pool.in_flight(), 0);
    }

    /// Regression: the pre-ticket-queue fast path granted newly-arriving
    /// small requests whenever they fit, even while a larger request of
    /// the same priority sat blocked — so a steady stream of small joins
    /// starved a queued large join indefinitely. With the ticket queue the
    /// fast path may not barge past a compatible waiter: small arrivals
    /// are refused (non-blocking) or queue behind (blocking), and the
    /// large request completes as soon as the holder releases.
    #[test]
    fn queued_large_request_is_not_starved_by_small_arrivals() {
        let pool = PagePool::new(10);
        let holder = pool.try_reserve(4).unwrap(); // 6 pages free
        let large_granted = AtomicBool::new(false);
        thread::scope(|scope| {
            let large_pool = pool.clone();
            let large_granted = &large_granted;
            let large = scope.spawn(move || {
                let (r, waited) = large_pool.reserve(8, 16).unwrap();
                large_granted.store(true, Ordering::SeqCst);
                assert!(waited);
                drop(r);
            });
            while pool.waiting() == 0 {
                thread::yield_now();
            }
            // The regression: 6 pages are free and 2 would fit, but the
            // large request was queued first — every shape of small
            // arrival must refuse to barge.
            for _ in 0..32 {
                assert!(
                    pool.try_reserve(2).is_none(),
                    "small fast-path grant barged past the queued large request"
                );
            }
            // A blocking same-priority small arrival queues *behind* the
            // large request: its deadline expires un-granted.
            match pool.reserve_request(ReserveRequest {
                pages: 2,
                priority: PRIORITY_NORMAL,
                max_waiting: 16,
                deadline: Some(Duration::from_millis(20)),
            }) {
                Err(ReserveError::DeadlineExceeded { .. }) => {}
                other => panic!("small arrival overtook the queued large request: {other:?}"),
            }
            assert!(!large_granted.load(Ordering::SeqCst));
            // The holder releases: the large request is granted at once
            // even though small requests kept arriving the whole time.
            drop(holder);
            large.join().unwrap();
        });
        assert!(large_granted.load(Ordering::SeqCst));
        assert_eq!(pool.in_flight(), 0);
        let st = pool.stats();
        assert_eq!(st.rejected_deadline, 1);
        assert_eq!(st.granted, st.released);
    }

    /// Priority classes are the sanctioned exception to FIFO: an urgent
    /// arrival may overtake queued lower-priority waiters (both on the
    /// fast path and in grant order), but never a peer.
    #[test]
    fn urgent_requests_overtake_casual_waiters_only() {
        let pool = PagePool::new(4);
        let holder = pool.try_reserve(3).unwrap(); // 1 page free
        thread::scope(|scope| {
            let casual_pool = pool.clone();
            let casual = scope.spawn(move || {
                casual_pool
                    .reserve_request(ReserveRequest {
                        pages: 2,
                        priority: PRIORITY_CASUAL,
                        max_waiting: 8,
                        deadline: None,
                    })
                    .unwrap()
            });
            while pool.waiting() == 0 {
                thread::yield_now();
            }
            // Fast path: 1 page fits and only a casual waiter is queued —
            // an urgent request may barge, a casual peer may not.
            assert!(pool.try_reserve_prio(1, PRIORITY_CASUAL).is_none());
            let urgent = pool.try_reserve_prio(1, PRIORITY_URGENT).unwrap();
            drop(urgent);

            // Grant order: queue an urgent waiter *after* the casual one;
            // on release it is granted first.
            let urgent_pool = pool.clone();
            let urgent = scope.spawn(move || {
                let a = urgent_pool
                    .reserve_request(ReserveRequest {
                        pages: 4,
                        priority: PRIORITY_URGENT,
                        max_waiting: 8,
                        deadline: None,
                    })
                    .unwrap();
                assert!(a.waited);
                a
            });
            while pool.waiting() < 2 {
                thread::yield_now();
            }
            drop(holder);
            // The urgent waiter (4 pages) fits only if granted before the
            // casual one (2 pages) — strict (priority, ticket) order.
            let urgent_adm = urgent.join().unwrap();
            assert_eq!(pool.in_flight(), 4);
            drop(urgent_adm);
            let casual_adm = casual.join().unwrap();
            assert!(casual_adm.waited);
            drop(casual_adm);
        });
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn deadline_expiry_withdraws_the_ticket_and_unblocks_the_queue() {
        let pool = PagePool::new(4);
        let holder = pool.try_reserve(4).unwrap();
        // A large-ish waiter whose deadline expires while queued…
        let err = pool
            .reserve_request(ReserveRequest {
                pages: 3,
                priority: PRIORITY_NORMAL,
                max_waiting: 8,
                deadline: Some(Duration::from_millis(10)),
            })
            .unwrap_err();
        assert!(matches!(err, ReserveError::DeadlineExceeded { .. }));
        let st = pool.stats();
        assert_eq!(st.rejected_deadline, 1);
        assert_eq!(pool.waiting(), 0, "expired ticket must leave the queue");
        drop(holder);
        // …leaves the pool fully usable.
        let (r, _) = pool.reserve(4, 8).unwrap();
        drop(r);
        assert_eq!(pool.in_flight(), 0);
    }

    /// Multi-threaded stress across priorities, deadlines, and sizes: no
    /// lost wakeups (the test terminates), never overcommitted, and the
    /// ledger invariant `granted == released + live reservations` holds at
    /// the end (live = 0) and is sampled mid-flight through the
    /// success/release counting.
    #[test]
    fn stress_mixed_priorities_keep_the_ledger_balanced() {
        let pool = PagePool::new(12);
        let successes = AtomicU64::new(0);
        let deadline_rejects = AtomicU64::new(0);
        thread::scope(|scope| {
            for t in 0..8 {
                let pool = pool.clone();
                let successes = &successes;
                let deadline_rejects = &deadline_rejects;
                scope.spawn(move || {
                    // Deterministic per-thread mix of sizes/priorities.
                    let mut x = 0x9E3779B97F4A7C15u64 ^ (t as u64);
                    for i in 0..150 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let pages = 1 + (x % 4);
                        let priority = (x >> 8) as u8 % 3;
                        let deadline = if i % 5 == 0 {
                            Some(Duration::from_micros(200))
                        } else {
                            None
                        };
                        match pool.reserve_request(ReserveRequest {
                            pages,
                            priority,
                            max_waiting: 64,
                            deadline,
                        }) {
                            Ok(adm) => {
                                assert!(pool.in_flight() <= 12, "overcommitted");
                                successes.fetch_add(1, Ordering::Relaxed);
                                drop(adm);
                            }
                            Err(ReserveError::DeadlineExceeded { .. }) => {
                                deadline_rejects.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected rejection: {e}"),
                        }
                    }
                });
            }
        });
        let st = pool.stats();
        let ok = successes.load(Ordering::Relaxed);
        assert_eq!(st.granted, ok, "every success is a grant");
        assert_eq!(st.released, ok, "every reservation was returned (live = 0)");
        assert_eq!(st.granted, st.released + pool.in_flight());
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(
            st.rejected_deadline,
            deadline_rejects.load(Ordering::Relaxed)
        );
        assert_eq!(ok + st.rejected_deadline, 8 * 150);
        assert!(st.pages_high_water <= 12);
    }
}
