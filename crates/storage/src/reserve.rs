//! Shared buffer-pool reservation accounting.
//!
//! The join algorithms budget their buffer pages per run ([`crate::buffer`]
//! caches pages for one caller); a multi-query service needs the level
//! above: a single page budget shared by every query *in flight*, so that
//! admitting one more join never overcommits the memory the configuration
//! promised. [`PagePool`] is that ledger. It moves no data — heap files
//! still read through the simulated disk — it only accounts for who holds
//! how many pages, blocks admissions that do not fit, and refuses outright
//! the two cases that could otherwise deadlock or starve the queue:
//!
//! * a request larger than the whole pool can never be satisfied and is
//!   rejected immediately ([`ReserveError::TooLarge`]) instead of waiting
//!   forever;
//! * once `max_waiting` requests are already blocked, further requests are
//!   rejected ([`ReserveError::Saturated`]) instead of growing the queue
//!   without bound under memory pressure.
//!
//! Reservations are RAII: dropping a [`PageReservation`] returns its pages
//! and wakes every waiter (wake-all, because waiters need different page
//! counts and any of them might now fit).

use std::sync::{Arc, Condvar, Mutex};

/// Lifetime counters of a [`PagePool`]; all monotone, deterministic given
/// a deterministic admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Reservations granted (immediately or after waiting).
    pub granted: u64,
    /// Reservations granted only after blocking at least once.
    pub waited: u64,
    /// Requests rejected because they exceed the pool capacity outright.
    pub rejected_oversize: u64,
    /// Requests rejected because the wait queue was full.
    pub rejected_saturated: u64,
    /// Reservations returned to the pool.
    pub released: u64,
    /// Largest number of pages ever simultaneously reserved.
    pub pages_high_water: u64,
    /// Largest number of requests ever simultaneously blocked waiting.
    pub queue_high_water: u64,
}

#[derive(Debug, Default)]
struct PoolState {
    in_flight: u64,
    waiting: u64,
    stats: PoolStats,
}

#[derive(Debug)]
struct PoolShared {
    capacity: u64,
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// Why a reservation was refused. Both variants are immediate — the pool
/// never blocks a request it cannot eventually satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// The request exceeds the pool's total capacity.
    TooLarge {
        /// Pages requested.
        pages: u64,
        /// Total pool capacity.
        capacity: u64,
    },
    /// The bounded wait queue is full.
    Saturated {
        /// Requests already waiting.
        waiting: u64,
        /// The configured queue bound.
        max_waiting: u64,
    },
}

impl std::fmt::Display for ReserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReserveError::TooLarge { pages, capacity } => {
                write!(f, "reservation of {pages} pages exceeds the {capacity}-page pool")
            }
            ReserveError::Saturated { waiting, max_waiting } => {
                write!(f, "admission queue full ({waiting} waiting, bound {max_waiting})")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// A shared page-budget ledger for concurrent queries. Cheaply clonable;
/// all clones account against the same budget.
#[derive(Debug, Clone)]
pub struct PagePool(Arc<PoolShared>);

impl PagePool {
    /// A pool of `capacity` pages. A zero-capacity pool rejects every
    /// non-zero reservation as oversize.
    pub fn new(capacity: u64) -> PagePool {
        PagePool(Arc::new(PoolShared {
            capacity,
            state: Mutex::new(PoolState::default()),
            cv: Condvar::new(),
        }))
    }

    /// Total capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.0.capacity
    }

    /// Pages currently reserved.
    pub fn in_flight(&self) -> u64 {
        self.lock().in_flight
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.0.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reserves `pages` without blocking. Returns `None` when the pool
    /// cannot grant the request *right now* (oversize requests still fail
    /// with an accounting entry, so callers can distinguish).
    pub fn try_reserve(&self, pages: u64) -> Option<PageReservation> {
        let mut st = self.lock();
        if pages > self.0.capacity {
            st.stats.rejected_oversize += 1;
            return None;
        }
        if st.in_flight + pages > self.0.capacity {
            return None;
        }
        Self::grant(&mut st, pages, false);
        Some(PageReservation { pool: self.clone(), pages })
    }

    /// Reserves `pages`, blocking until capacity frees. Fails immediately
    /// when the request can never fit ([`ReserveError::TooLarge`]) or when
    /// `max_waiting` requests are already blocked
    /// ([`ReserveError::Saturated`]). The returned flag is `true` when the
    /// reservation had to wait (the caller was *queued* rather than
    /// admitted immediately).
    pub fn reserve(
        &self,
        pages: u64,
        max_waiting: u64,
    ) -> Result<(PageReservation, bool), ReserveError> {
        let mut st = self.lock();
        if pages > self.0.capacity {
            st.stats.rejected_oversize += 1;
            return Err(ReserveError::TooLarge { pages, capacity: self.0.capacity });
        }
        if st.in_flight + pages <= self.0.capacity {
            Self::grant(&mut st, pages, false);
            return Ok((PageReservation { pool: self.clone(), pages }, false));
        }
        if st.waiting >= max_waiting {
            st.stats.rejected_saturated += 1;
            return Err(ReserveError::Saturated { waiting: st.waiting, max_waiting });
        }
        st.waiting += 1;
        st.stats.queue_high_water = st.stats.queue_high_water.max(st.waiting);
        while st.in_flight + pages > self.0.capacity {
            st = self.0.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.waiting -= 1;
        Self::grant(&mut st, pages, true);
        Ok((PageReservation { pool: self.clone(), pages }, true))
    }

    fn grant(st: &mut PoolState, pages: u64, waited: bool) {
        st.in_flight += pages;
        st.stats.granted += 1;
        if waited {
            st.stats.waited += 1;
        }
        st.stats.pages_high_water = st.stats.pages_high_water.max(st.in_flight);
    }

    fn release(&self, pages: u64) {
        let mut st = self.lock();
        st.in_flight = st.in_flight.saturating_sub(pages);
        st.stats.released += 1;
        drop(st);
        // Wake everyone: waiters need different page counts, and any of
        // them might fit now.
        self.0.cv.notify_all();
    }
}

/// A granted page reservation; pages return to the pool on drop.
#[derive(Debug)]
pub struct PageReservation {
    pool: PagePool,
    pages: u64,
}

impl PageReservation {
    /// Pages this reservation holds.
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl Drop for PageReservation {
    fn drop(&mut self) {
        self.pool.release(self.pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn grants_and_releases() {
        let pool = PagePool::new(10);
        let a = pool.try_reserve(4).unwrap();
        let b = pool.try_reserve(6).unwrap();
        assert_eq!(pool.in_flight(), 10);
        assert!(pool.try_reserve(1).is_none());
        drop(a);
        assert_eq!(pool.in_flight(), 6);
        let c = pool.try_reserve(4).unwrap();
        drop(b);
        drop(c);
        let st = pool.stats();
        assert_eq!(st.granted, 3);
        assert_eq!(st.released, 3);
        assert_eq!(st.pages_high_water, 10);
    }

    #[test]
    fn oversize_is_rejected_not_queued() {
        let pool = PagePool::new(8);
        assert!(matches!(
            pool.reserve(9, 100),
            Err(ReserveError::TooLarge { pages: 9, capacity: 8 })
        ));
        assert_eq!(pool.stats().rejected_oversize, 1);
        // Even while the pool is busy, an oversize request never waits.
        let _held = pool.try_reserve(8).unwrap();
        assert!(matches!(pool.reserve(9, 100), Err(ReserveError::TooLarge { .. })));
    }

    #[test]
    fn saturated_queue_rejects() {
        let pool = PagePool::new(4);
        let held = pool.try_reserve(4).unwrap();
        // Queue bound zero: a full pool rejects instead of waiting.
        assert!(matches!(
            pool.reserve(1, 0),
            Err(ReserveError::Saturated { waiting: 0, max_waiting: 0 })
        ));
        assert_eq!(pool.stats().rejected_saturated, 1);
        drop(held);
        let (r, waited) = pool.reserve(1, 0).unwrap();
        assert!(!waited);
        drop(r);
    }

    #[test]
    fn blocked_reservation_wakes_on_release() {
        let pool = PagePool::new(4);
        let held = pool.try_reserve(3).unwrap();
        let done = AtomicU64::new(0);
        thread::scope(|scope| {
            let pool2 = pool.clone();
            let done = &done;
            let h = scope.spawn(move || {
                let (r, waited) = pool2.reserve(2, 8).unwrap();
                assert!(waited, "had to wait for the holder to release");
                done.store(1, Ordering::SeqCst);
                drop(r);
            });
            // Give the waiter time to block, then release.
            while pool.stats().queue_high_water == 0 {
                thread::yield_now();
            }
            assert_eq!(done.load(Ordering::SeqCst), 0);
            drop(held);
            h.join().unwrap();
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
        let st = pool.stats();
        assert_eq!(st.waited, 1);
        assert_eq!(st.queue_high_water, 1);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn concurrent_reservations_never_overcommit() {
        let pool = PagePool::new(10);
        let peak = AtomicU64::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                let pool = pool.clone();
                let peak = &peak;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let (r, _) = pool.reserve(3, 64).unwrap();
                        let now = pool.in_flight();
                        peak.fetch_max(now, Ordering::SeqCst);
                        assert!(now <= 10, "overcommitted: {now}");
                        drop(r);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 10);
        let st = pool.stats();
        assert_eq!(st.granted, 400);
        assert_eq!(st.released, 400);
        assert_eq!(pool.in_flight(), 0);
    }
}
