//! I/O statistics and the random:sequential cost model.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The price of one random access relative to one sequential access.
///
/// The paper runs every experiment at ratios 2:1, 5:1, and 10:1 (§4.2);
/// costs are reported in units of one sequential access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostRatio {
    /// Cost of one random access, in sequential-access units.
    pub random: u64,
}

impl CostRatio {
    /// The paper's 2:1 ratio.
    pub const R2: CostRatio = CostRatio { random: 2 };
    /// The paper's 5:1 ratio (used in §4.3 and §4.4).
    pub const R5: CostRatio = CostRatio { random: 5 };
    /// The paper's 10:1 ratio.
    pub const R10: CostRatio = CostRatio { random: 10 };

    /// A custom ratio `random:1`.
    pub const fn new(random: u64) -> CostRatio {
        CostRatio { random }
    }
}

impl fmt::Display for CostRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:1", self.random)
    }
}

/// Counts of the four access classes performed on a [`crate::DiskSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct IoStats {
    /// Reads that required a seek.
    pub random_reads: u64,
    /// Reads of the page following the previous access.
    pub seq_reads: u64,
    /// Writes that required a seek.
    pub random_writes: u64,
    /// Writes to the page following the previous access.
    pub seq_writes: u64,
}

impl IoStats {
    /// All-zero statistics.
    pub const ZERO: IoStats = IoStats {
        random_reads: 0,
        seq_reads: 0,
        random_writes: 0,
        seq_writes: 0,
    };

    /// Total random accesses (reads + writes).
    pub fn random(&self) -> u64 {
        self.random_reads + self.random_writes
    }

    /// Total sequential accesses (reads + writes).
    pub fn sequential(&self) -> u64 {
        self.seq_reads + self.seq_writes
    }

    /// Total accesses of any kind.
    pub fn total_ios(&self) -> u64 {
        self.random() + self.sequential()
    }

    /// The paper's evaluation-cost metric: sequential accesses cost 1,
    /// random accesses cost `ratio.random`.
    pub fn cost(&self, ratio: CostRatio) -> u64 {
        self.random() * ratio.random + self.sequential()
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, o: IoStats) -> IoStats {
        IoStats {
            random_reads: self.random_reads + o.random_reads,
            seq_reads: self.seq_reads + o.seq_reads,
            random_writes: self.random_writes + o.random_writes,
            seq_writes: self.seq_writes + o.seq_writes,
        }
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, o: IoStats) {
        *self = *self + o;
    }
}

impl Sub for IoStats {
    type Output = IoStats;
    /// Saturating per-field difference — used to compute per-phase deltas
    /// from monotone counters.
    fn sub(self, o: IoStats) -> IoStats {
        IoStats {
            random_reads: self.random_reads.saturating_sub(o.random_reads),
            seq_reads: self.seq_reads.saturating_sub(o.seq_reads),
            random_writes: self.random_writes.saturating_sub(o.random_writes),
            seq_writes: self.seq_writes.saturating_sub(o.seq_writes),
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {}r/{}s, writes {}r/{}s",
            self.random_reads, self.seq_reads, self.random_writes, self.seq_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_random_by_ratio() {
        let s = IoStats {
            random_reads: 3,
            seq_reads: 10,
            random_writes: 2,
            seq_writes: 5,
        };
        assert_eq!(s.cost(CostRatio::R5), 5 * 5 + 15);
        assert_eq!(s.cost(CostRatio::new(1)), s.total_ios());
        assert_eq!(s.random(), 5);
        assert_eq!(s.sequential(), 15);
    }

    #[test]
    fn arithmetic() {
        let a = IoStats {
            random_reads: 1,
            seq_reads: 2,
            random_writes: 3,
            seq_writes: 4,
        };
        let b = IoStats {
            random_reads: 10,
            seq_reads: 20,
            random_writes: 30,
            seq_writes: 40,
        };
        let sum = a + b;
        assert_eq!(sum.random_reads, 11);
        assert_eq!(sum.seq_writes, 44);
        let delta = b - a;
        assert_eq!(delta.seq_reads, 18);
        // saturating
        assert_eq!((a - b).random_reads, 0);
        let mut acc = IoStats::ZERO;
        acc += a;
        acc += a;
        assert_eq!(acc.seq_reads, 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CostRatio::R10.to_string(), "10:1");
        let s = IoStats {
            random_reads: 1,
            seq_reads: 2,
            random_writes: 3,
            seq_writes: 4,
        };
        assert_eq!(s.to_string(), "reads 1r/2s, writes 3r/4s");
    }
}
