//! Relation generators.

use crate::spec::PaperParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vtjoin_core::{AttrDef, AttrType, Interval, Relation, Schema, Tuple, Value};
use vtjoin_storage::{HeapFile, SharedDisk};

/// How join-key values are distributed over tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over `[0, keys)` — the paper's objects.
    Uniform,
    /// Zipf with the given exponent (skew ablations).
    Zipf(f64),
}

/// How tuple start chronons are distributed over the lifespan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeDistribution {
    /// Uniform over the lifespan — the paper's placement.
    Uniform,
    /// Concentrated in `n` equal-width bursts covering 10% of the
    /// lifespan (exercises non-uniform partition sizing).
    Clustered(u32),
}

/// Duration of the non-long-lived tuples.
///
/// The paper's experiments use exactly one chronon; real valid-time data
/// has varied lifespans, which these alternatives model for the wider
/// test and ablation surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationDistribution {
    /// Exactly one chronon — the paper's §4.2/§4.3 construction.
    Instant,
    /// Uniform over `[1, max]` chronons.
    UniformUpTo(i64),
    /// Geometric with the given continue-probability (mean `1/(1−p)`),
    /// capped at half the lifespan so "short" stays short.
    Geometric(f64),
}

/// Full generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total number of tuples.
    pub tuples: u64,
    /// How many of them are long-lived (start uniform in the first half of
    /// the lifespan, duration = lifespan / 2 — the §4.3 construction).
    pub long_lived: u64,
    /// Relation lifespan `[0, lifespan)` in chronons.
    pub lifespan: i64,
    /// Distinct join-key values (the paper's real-world objects).
    pub keys: u64,
    /// Key skew.
    pub key_dist: KeyDistribution,
    /// Start-time distribution of the non-long-lived tuples.
    pub time_dist: TimeDistribution,
    /// Duration distribution of the non-long-lived tuples.
    pub duration_dist: DurationDistribution,
    /// Padding bytes per tuple (0 = no padding attribute payload).
    pub pad_bytes: usize,
    /// RNG seed; every generator is fully deterministic.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Paper-style config at the given scale: one-chronon tuples, no
    /// long-lived, 128-byte records, uniform keys.
    pub fn paper(params: &PaperParams, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            tuples: params.relation_tuples,
            long_lived: 0,
            lifespan: params.lifespan,
            keys: params.objects,
            key_dist: KeyDistribution::Uniform,
            time_dist: TimeDistribution::Uniform,
            duration_dist: DurationDistribution::Instant,
            // Record = 16 (interval) + 1 (arity) + 9 (int) + 3 (bytes
            // header) + pad; padded so tuples_per_page records fill a page.
            pad_bytes: params.tuple_bytes - 30,
            seed,
        }
    }

    /// Generator for a declarative [`crate::spec::WorkloadSpec`]: paper-style
    /// one-chronon tuples plus the spec's long-lived count, with the key
    /// distribution decoded from the spec's fixed-point Zipf exponent.
    pub fn from_spec(spec: &crate::spec::WorkloadSpec) -> GeneratorConfig {
        GeneratorConfig {
            tuples: spec.tuples,
            long_lived: spec.long_lived.min(spec.tuples),
            lifespan: spec.lifespan,
            keys: spec.keys,
            key_dist: spec.key_distribution(),
            time_dist: TimeDistribution::Uniform,
            duration_dist: DurationDistribution::Instant,
            pad_bytes: 0,
            seed: spec.seed,
        }
    }

    /// Builder: set the number of long-lived tuples.
    #[must_use]
    pub fn long_lived(mut self, n: u64) -> GeneratorConfig {
        self.long_lived = n.min(self.tuples);
        self
    }

    /// Builder: set the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> GeneratorConfig {
        self.seed = seed;
        self
    }
}

/// Schema of a generated outer relation: shared key plus its own payload.
pub fn outer_schema(pad: usize) -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("key", AttrType::Int),
        AttrDef::new("rpad", AttrType::Bytes(pad)),
    ])
    .expect("static schema")
    .into_shared()
}

/// Schema of a generated inner relation.
pub fn inner_schema(pad: usize) -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("key", AttrType::Int),
        AttrDef::new("spad", AttrType::Bytes(pad)),
    ])
    .expect("static schema")
    .into_shared()
}

fn draw_key(rng: &mut StdRng, cfg: &GeneratorConfig) -> i64 {
    match cfg.key_dist {
        KeyDistribution::Uniform => rng.gen_range(0..cfg.keys) as i64,
        KeyDistribution::Zipf(theta) => zipf(rng, cfg.keys, theta),
    }
}

fn draw_duration(rng: &mut StdRng, cfg: &GeneratorConfig) -> i64 {
    let cap = (cfg.lifespan / 2).max(1);
    match cfg.duration_dist {
        DurationDistribution::Instant => 1,
        DurationDistribution::UniformUpTo(max) => rng.gen_range(1..=max.clamp(1, cap)),
        DurationDistribution::Geometric(p) => {
            let p = p.clamp(0.0, 0.999);
            let mut d = 1i64;
            while d < cap && rng.gen_bool(p) {
                d += 1;
            }
            d
        }
    }
}

fn draw_start(rng: &mut StdRng, cfg: &GeneratorConfig) -> i64 {
    match cfg.time_dist {
        TimeDistribution::Uniform => rng.gen_range(0..cfg.lifespan),
        TimeDistribution::Clustered(n) => {
            let n = i64::from(n.max(1));
            let cluster = rng.gen_range(0..n);
            let width = (cfg.lifespan / (10 * n)).max(1);
            let base = cfg.lifespan * cluster / n;
            (base + rng.gen_range(0..width)).min(cfg.lifespan - 1)
        }
    }
}

/// Inverse-CDF Zipf sampler over `[0, n)` (simple and deterministic; fine
/// for workload skew, not for statistics).
fn zipf(rng: &mut StdRng, n: u64, theta: f64) -> i64 {
    let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).sum();
    let mut u = rng.gen_range(0.0..1.0) * h;
    for k in 1..=n {
        u -= 1.0 / (k as f64).powf(theta);
        if u <= 0.0 {
            return (k - 1) as i64;
        }
    }
    (n - 1) as i64
}

/// Generates a relation per `cfg` over the given schema (outer or inner).
///
/// The §4.3 construction: `cfg.long_lived` tuples get a start uniform over
/// the first half of the lifespan and a duration of exactly half the
/// lifespan; the remaining tuples are one chronon long. Tuple order is
/// shuffled so long-lived tuples spread over the relation's pages.
pub fn generate(schema: Arc<Schema>, cfg: &GeneratorConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tuples = Vec::with_capacity(cfg.tuples as usize);
    let half = (cfg.lifespan / 2).max(1);
    for i in 0..cfg.tuples {
        let key = draw_key(&mut rng, cfg);
        let valid = if i < cfg.long_lived {
            let start = rng.gen_range(0..half);
            Interval::from_raw(start, start + half).expect("ordered")
        } else {
            let start = draw_start(&mut rng, cfg);
            let end = start + draw_duration(&mut rng, cfg) - 1;
            Interval::from_raw(start, end).expect("ordered")
        };
        let values = vec![
            Value::Int(key),
            Value::Bytes(vec![0u8; cfg.pad_bytes].into_boxed_slice()),
        ];
        tuples.push(Tuple::new(values, valid));
    }
    tuples.shuffle(&mut rng);
    Relation::from_parts_unchecked(schema, tuples)
}

/// §4.2 database: every tuple exactly one chronon long, uniform placement.
pub fn uniform_snapshot(schema: Arc<Schema>, cfg: &GeneratorConfig) -> Relation {
    let cfg = GeneratorConfig {
        long_lived: 0,
        ..cfg.clone()
    };
    generate(schema, &cfg)
}

/// §4.3 database: `long_lived` long-lived tuples mixed into one-chronon
/// tuples.
pub fn long_lived_mix(schema: Arc<Schema>, cfg: &GeneratorConfig, long_lived: u64) -> Relation {
    generate(schema, &cfg.clone().long_lived(long_lived))
}

/// Generates and bulk-loads in one step.
pub fn generate_heap(
    disk: &SharedDisk,
    schema: Arc<Schema>,
    cfg: &GeneratorConfig,
) -> vtjoin_storage::Result<HeapFile> {
    HeapFile::bulk_load(disk, &generate(schema, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> GeneratorConfig {
        GeneratorConfig {
            tuples: 2000,
            long_lived: 0,
            lifespan: 10_000,
            keys: 200,
            key_dist: KeyDistribution::Uniform,
            time_dist: TimeDistribution::Uniform,
            duration_dist: DurationDistribution::Instant,
            pad_bytes: 0,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(outer_schema(0), &base_cfg());
        let b = generate(outer_schema(0), &base_cfg());
        let c = generate(outer_schema(0), &base_cfg().seed(43));
        assert_eq!(a.tuples(), b.tuples());
        assert_ne!(a.tuples(), c.tuples());
    }

    #[test]
    fn uniform_snapshot_is_one_chronon_everywhere() {
        let r = uniform_snapshot(outer_schema(0), &base_cfg());
        assert_eq!(r.len(), 2000);
        for t in r.iter() {
            assert_eq!(t.valid().duration(), 1);
            let c = t.valid().start().value();
            assert!((0..10_000).contains(&c));
        }
    }

    #[test]
    fn long_lived_mix_matches_the_papers_construction() {
        let r = long_lived_mix(outer_schema(0), &base_cfg(), 500);
        let (mut long, mut short) = (0, 0);
        for t in r.iter() {
            if t.valid().duration() > 1 {
                long += 1;
                let s = t.valid().start().value();
                assert!((0..5000).contains(&s), "start in first half, got {s}");
                assert_eq!(
                    t.valid().duration(),
                    5001,
                    "duration = half lifespan + 1 chronon"
                );
            } else {
                short += 1;
            }
        }
        assert_eq!(long, 500);
        assert_eq!(short, 1500);
    }

    #[test]
    fn long_lived_tuples_are_shuffled_across_the_relation() {
        let r = long_lived_mix(outer_schema(0), &base_cfg(), 500);
        // Not all long-lived tuples in the first quarter of the tuple list.
        let first_quarter = r.tuples()[..500]
            .iter()
            .filter(|t| t.valid().duration() > 1)
            .count();
        assert!(first_quarter < 400, "shuffle left {first_quarter} in front");
        assert!(first_quarter > 25, "shuffle removed too many from front");
    }

    #[test]
    fn keys_cover_the_domain() {
        let r = generate(outer_schema(0), &base_cfg());
        let mut seen = std::collections::HashSet::new();
        for t in r.iter() {
            let k = t.value(0).as_int().unwrap();
            assert!((0..200).contains(&k));
            seen.insert(k);
        }
        assert!(
            seen.len() > 150,
            "uniform keys should cover most of the domain"
        );
    }

    #[test]
    fn zipf_skews_towards_small_keys() {
        let cfg = GeneratorConfig {
            key_dist: KeyDistribution::Zipf(1.2),
            ..base_cfg()
        };
        let r = generate(outer_schema(0), &cfg);
        let zero = r.iter().filter(|t| t.value(0).as_int() == Some(0)).count();
        let tail = r
            .iter()
            .filter(|t| t.value(0).as_int().unwrap() >= 100)
            .count();
        assert!(
            zero * 4 > tail,
            "zipf head {zero} should dominate tail {tail}"
        );
    }

    #[test]
    fn from_spec_honours_the_zipf_knob() {
        use crate::spec::WorkloadSpec;
        let spec = WorkloadSpec {
            name: "skew".into(),
            tuples: 2000,
            long_lived: 100,
            lifespan: 10_000,
            keys: 200,
            zipf_x100: 120,
            seed: 42,
        };
        let cfg = GeneratorConfig::from_spec(&spec);
        assert_eq!(cfg.key_dist, KeyDistribution::Zipf(1.2));
        assert_eq!(cfg.long_lived, 100);
        let r = generate(outer_schema(0), &cfg);
        let zero = r.iter().filter(|t| t.value(0).as_int() == Some(0)).count();
        assert!(
            zero > 2000 / 200,
            "zipf head should exceed the uniform share, got {zero}"
        );
    }

    #[test]
    fn clustered_starts_land_in_bursts() {
        let cfg = GeneratorConfig {
            time_dist: TimeDistribution::Clustered(4),
            ..base_cfg()
        };
        let r = generate(outer_schema(0), &cfg);
        // Burst windows are the first 10% of each quarter.
        for t in r.iter() {
            let c = t.valid().start().value();
            let in_burst = (0..4).any(|q| {
                let base = 10_000 * q / 4;
                (base..base + 250).contains(&c)
            });
            assert!(in_burst, "start {c} outside every burst");
        }
    }

    #[test]
    fn duration_distributions() {
        let uni = GeneratorConfig {
            duration_dist: DurationDistribution::UniformUpTo(50),
            ..base_cfg()
        };
        let r = generate(outer_schema(0), &uni);
        assert!(r.iter().all(|t| (1..=50).contains(&(t.lifespan() as i64))));
        assert!(
            r.iter().any(|t| t.lifespan() > 1),
            "not everything is an instant"
        );

        let geo = GeneratorConfig {
            duration_dist: DurationDistribution::Geometric(0.5),
            ..base_cfg()
        };
        let g = generate(outer_schema(0), &geo);
        let mean: f64 = g.iter().map(|t| t.lifespan() as f64).sum::<f64>() / g.len() as f64;
        assert!(
            (1.5..3.0).contains(&mean),
            "geometric(0.5) mean ≈ 2, got {mean}"
        );
        // Determinism across distributions too.
        let g2 = generate(outer_schema(0), &geo);
        assert_eq!(g.tuples(), g2.tuples());
    }

    #[test]
    fn paper_config_packs_32_tuples_per_page() {
        let params = PaperParams::SMALL;
        let cfg = GeneratorConfig {
            tuples: 320,
            ..GeneratorConfig::paper(&params, 1)
        };
        let disk = SharedDisk::new(params.page_size);
        let heap = generate_heap(&disk, outer_schema(cfg.pad_bytes), &cfg).unwrap();
        assert_eq!(heap.tuples(), 320);
        assert_eq!(heap.pages(), 10, "exactly 32 tuples per 4 KB page");
    }

    #[test]
    fn schemas_share_only_the_key() {
        let r = outer_schema(8);
        let s = inner_schema(8);
        let (lr, ls) = r.join_attributes(&s).unwrap();
        assert_eq!(lr, vec![0]);
        assert_eq!(ls, vec![0]);
    }
}
