//! Plain-text import/export of valid-time relations.
//!
//! A simple line format so generated workloads and experiment inputs can
//! be saved, diffed, and reloaded:
//!
//! ```text
//! # vtjoin v1
//! # schema: key:int, name:str, active:bool, pad:bytes
//! 7|alice|true|00ff|10|20
//! ```
//!
//! One row per tuple: the explicit values in schema order, then `Vs` and
//! `Ve`, separated by `|`. Strings are percent-escaped (`%`, `|`, newline);
//! bytes are lowercase hex; null is the literal `\N`.

use std::fmt::Write as _;
use std::sync::Arc;
use vtjoin_core::{AttrDef, AttrType, Interval, Relation, Schema, TemporalError, Tuple, Value};

/// Errors raised by the text codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// Malformed header or row.
    Parse(String),
    /// Schema/value mismatch while building the relation.
    Model(String),
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Parse(m) => write!(f, "parse error: {m}"),
            TextError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<TemporalError> for TextError {
    fn from(e: TemporalError) -> Self {
        TextError::Model(e.to_string())
    }
}

fn type_name(ty: AttrType) -> &'static str {
    match ty {
        AttrType::Int => "int",
        AttrType::Bool => "bool",
        AttrType::Str => "str",
        AttrType::Bytes(_) => "bytes",
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Result<String, TextError> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| TextError::Parse("truncated escape".into()))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| TextError::Parse(format!("bad escape %{hex}")))?;
            out.push(v as char);
            i += 3;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Ok(out)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("\\N"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => escape(s, out),
        Value::Bytes(b) => {
            for byte in b {
                let _ = write!(out, "{byte:02x}");
            }
        }
    }
}

fn parse_value(field: &str, ty: AttrType) -> Result<Value, TextError> {
    if field == "\\N" {
        return Ok(Value::Null);
    }
    Ok(match ty {
        AttrType::Int => Value::Int(
            field
                .parse()
                .map_err(|_| TextError::Parse(format!("bad int `{field}`")))?,
        ),
        AttrType::Bool => Value::Bool(
            field
                .parse()
                .map_err(|_| TextError::Parse(format!("bad bool `{field}`")))?,
        ),
        AttrType::Str => Value::Str(unescape(field)?.into_boxed_str()),
        AttrType::Bytes(_) => {
            if !field.len().is_multiple_of(2) {
                return Err(TextError::Parse("odd-length hex".into()));
            }
            let mut bytes = Vec::with_capacity(field.len() / 2);
            for i in (0..field.len()).step_by(2) {
                bytes.push(
                    u8::from_str_radix(&field[i..i + 2], 16)
                        .map_err(|_| TextError::Parse(format!("bad hex `{field}`")))?,
                );
            }
            Value::Bytes(bytes.into_boxed_slice())
        }
    })
}

/// Serializes a relation to the text format.
pub fn to_text(rel: &Relation) -> String {
    let mut out = String::new();
    out.push_str("# vtjoin v1\n# schema: ");
    for (i, a) in rel.schema().attrs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}:{}", a.name, type_name(a.ty));
    }
    out.push('\n');
    for t in rel.iter() {
        for v in t.values() {
            write_value(v, &mut out);
            out.push('|');
        }
        let _ = writeln!(
            out,
            "{}|{}",
            t.valid().start().value(),
            t.valid().end().value()
        );
    }
    out
}

/// Parses a relation from the text format.
pub fn from_text(text: &str) -> Result<Relation, TextError> {
    let mut lines = text.lines();
    let magic = lines
        .next()
        .ok_or_else(|| TextError::Parse("empty input".into()))?;
    if magic.trim() != "# vtjoin v1" {
        return Err(TextError::Parse(format!("bad magic `{magic}`")));
    }
    let header = lines
        .next()
        .and_then(|l| l.strip_prefix("# schema: "))
        .ok_or_else(|| TextError::Parse("missing schema header".into()))?;
    let mut attrs = Vec::new();
    if !header.trim().is_empty() {
        for part in header.split(", ") {
            let (name, ty) = part
                .rsplit_once(':')
                .ok_or_else(|| TextError::Parse(format!("bad attr `{part}`")))?;
            let ty = match ty {
                "int" => AttrType::Int,
                "bool" => AttrType::Bool,
                "str" => AttrType::Str,
                "bytes" => AttrType::Bytes(0),
                other => return Err(TextError::Parse(format!("unknown type `{other}`"))),
            };
            attrs.push(AttrDef::new(name, ty));
        }
    }
    let schema: Arc<Schema> = Schema::new(attrs).map_err(TextError::from)?.into_shared();

    let mut tuples = Vec::new();
    for (no, line) in lines.enumerate() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != schema.arity() + 2 {
            return Err(TextError::Parse(format!(
                "row {}: {} fields, expected {}",
                no + 3,
                fields.len(),
                schema.arity() + 2
            )));
        }
        let mut values = Vec::with_capacity(schema.arity());
        for (f, a) in fields.iter().zip(schema.attrs()) {
            values.push(parse_value(f, a.ty)?);
        }
        let vs: i64 = fields[schema.arity()]
            .parse()
            .map_err(|_| TextError::Parse(format!("row {}: bad Vs", no + 3)))?;
        let ve: i64 = fields[schema.arity() + 1]
            .parse()
            .map_err(|_| TextError::Parse(format!("row {}: bad Ve", no + 3)))?;
        let valid = Interval::from_raw(vs, ve).map_err(TextError::from)?;
        tuples.push(Tuple::new(values, valid));
    }
    Relation::new(schema, tuples).map_err(TextError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            AttrDef::new("k", AttrType::Int),
            AttrDef::new("name", AttrType::Str),
            AttrDef::new("ok", AttrType::Bool),
            AttrDef::new("pad", AttrType::Bytes(4)),
        ])
        .unwrap()
        .into_shared();
        Relation::new(
            schema,
            vec![
                Tuple::new(
                    vec![
                        Value::Int(-7),
                        Value::Str("pipe|and%percent\nnewline".into()),
                        Value::Bool(true),
                        Value::Bytes(vec![0xde, 0xad].into()),
                    ],
                    Interval::from_raw(0, 99).unwrap(),
                ),
                Tuple::new(
                    vec![
                        Value::Null,
                        Value::Str(String::new().into()),
                        Value::Bool(false),
                        Value::Null,
                    ],
                    Interval::from_raw(-5, -5).unwrap(),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        let rel = sample();
        let text = to_text(&rel);
        let back = from_text(&text).unwrap();
        assert_eq!(back.schema().attrs().len(), 4);
        assert_eq!(back.tuples(), rel.tuples());
    }

    #[test]
    fn generated_workloads_round_trip() {
        let cfg = crate::generate::GeneratorConfig {
            tuples: 200,
            long_lived: 40,
            lifespan: 1000,
            keys: 10,
            key_dist: crate::generate::KeyDistribution::Uniform,
            time_dist: crate::generate::TimeDistribution::Uniform,
            duration_dist: crate::generate::DurationDistribution::Instant,
            pad_bytes: 8,
            seed: 9,
        };
        let rel = crate::generate::generate(crate::generate::outer_schema(8), &cfg);
        let back = from_text(&to_text(&rel)).unwrap();
        assert!(back.multiset_eq(&rel) || back.tuples() == rel.tuples());
        assert_eq!(back.tuples(), rel.tuples());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("nonsense\n").is_err());
        assert!(from_text("# vtjoin v1\nno header\n").is_err());
        assert!(from_text("# vtjoin v1\n# schema: k:int\n1|2\n1|2|3|4\n").is_err());
        assert!(from_text("# vtjoin v1\n# schema: k:int\nx|0|1\n").is_err());
        assert!(from_text("# vtjoin v1\n# schema: k:wat\n").is_err());
        // end before start
        assert!(from_text("# vtjoin v1\n# schema: k:int\n1|9|3\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# vtjoin v1\n# schema: k:int\n\n# a comment\n5|0|1\n";
        let rel = from_text(text).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].value(0), &Value::Int(5));
    }

    #[test]
    fn empty_relation_round_trips() {
        let schema = Schema::new(vec![AttrDef::new("k", AttrType::Int)])
            .unwrap()
            .into_shared();
        let rel = Relation::empty(schema);
        let back = from_text(&to_text(&rel)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.schema().arity(), 1);
    }
}
