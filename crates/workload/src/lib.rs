//! # vtjoin-workload — synthetic valid-time databases
//!
//! Deterministic generators for the experiment databases of the paper's §4
//! plus skewed extensions used by the wider test and ablation surface.
//!
//! The paper's global parameters (its Figure 5 — reconstructed in
//! DESIGN.md) are captured by [`spec::PaperParams`]: 4 KB pages, 128-byte
//! tuples (32 per page), 262,144-tuple relations occupying 8,192 pages
//! (32 MB), a 1,000,000-chronon relation lifespan, and ~26,214 real-world
//! objects with ten tuples each.
//!
//! Three experiment workloads:
//!
//! * [`generate::uniform_snapshot`] — §4.2: every tuple exactly one
//!   chronon long, uniformly placed (isolates memory effects; no
//!   long-lived tuples at all);
//! * [`generate::long_lived_mix`] — §4.3/§4.4: `k` long-lived tuples whose
//!   start is uniform over the first half of the lifespan and whose
//!   duration is half the lifespan, mixed with one-chronon tuples;
//! * extensions: Zipf-skewed keys, clustered (bursty) starts, and
//!   configurable duration distributions for the property-test surface.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod generate;
pub mod io;
pub mod spec;

pub use generate::{long_lived_mix, uniform_snapshot, GeneratorConfig};
pub use io::{from_text, to_text};
pub use spec::{PaperParams, WorkloadSpec};
