//! Experiment parameters (the paper's Figure 5, reconstructed).

/// The global parameter values of the paper's evaluation (§4.1,
/// Figure 5). The printed table is corrupted in the available copy; these
/// values are reverse-engineered from the paper's own arithmetic — see
/// DESIGN.md for the derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperParams {
    /// Disk page size in bytes.
    pub page_size: usize,
    /// Serialized tuple size in bytes (key + padding + timestamp).
    pub tuple_bytes: usize,
    /// Tuples per relation.
    pub relation_tuples: u64,
    /// Relation lifespan in chronons.
    pub lifespan: i64,
    /// Distinct real-world objects ("ten tuples per object").
    pub objects: u64,
}

impl PaperParams {
    /// The full-scale parameters: 32 MB relations of 262,144 tuples.
    pub const FULL: PaperParams = PaperParams {
        page_size: 4096,
        tuple_bytes: 128,
        relation_tuples: 262_144,
        lifespan: 1_000_000,
        objects: 26_214,
    };

    /// A laptop-friendly 1/4-scale variant (8 MB relations) preserving
    /// every ratio: tuples/page, tuples/object, memory fractions. (1/4 is
    /// the smallest scale at which the paper's 1 MB memory point stays
    /// feasible for Grace partitioning: the number of partitions must not
    /// exceed the partitioning buffers, i.e. roughly buffer² ≥ |r| pages.)
    pub const SMALL: PaperParams = PaperParams {
        page_size: 4096,
        tuple_bytes: 128,
        relation_tuples: 65_536,
        lifespan: 250_000,
        objects: 6_553,
    };

    /// Tuples that fit one page (the paper's 32).
    pub fn tuples_per_page(&self) -> u64 {
        // Records are padded to tuple_bytes − 1 so an exact power-of-two
        // count fits beside the 2-byte page header (see vtjoin-storage).
        (self.page_size as u64 - 2) / (self.tuple_bytes as u64 - 1)
    }

    /// Pages one relation occupies.
    pub fn relation_pages(&self) -> u64 {
        self.relation_tuples.div_ceil(self.tuples_per_page())
    }

    /// Relation size in bytes (pages × page size).
    pub fn relation_bytes(&self) -> u64 {
        self.relation_pages() * self.page_size as u64
    }

    /// Buffer pages corresponding to `megabytes` of main memory.
    pub fn buffer_pages_for_mb(&self, megabytes: u64) -> u64 {
        megabytes * 1024 * 1024 / self.page_size as u64
    }
}

/// A declarative description of one generated relation, so experiment
/// configurations can be recorded next to their results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Human-readable name.
    pub name: String,
    /// Total tuples.
    pub tuples: u64,
    /// Number of long-lived tuples among them.
    pub long_lived: u64,
    /// Lifespan in chronons.
    pub lifespan: i64,
    /// Distinct join-key values.
    pub keys: u64,
    /// Zipf exponent of the key distribution, fixed-point ×100
    /// (`0` = uniform, `100` = Zipf(1.0), `120` = Zipf(1.2)). Fixed-point
    /// keeps the spec `Eq`/hashable for experiment bookkeeping.
    pub zipf_x100: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The key distribution this spec describes, decoded from the
    /// fixed-point exponent.
    pub fn key_distribution(&self) -> crate::generate::KeyDistribution {
        if self.zipf_x100 == 0 {
            crate::generate::KeyDistribution::Uniform
        } else {
            crate::generate::KeyDistribution::Zipf(self.zipf_x100 as f64 / 100.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_the_papers_arithmetic() {
        let p = PaperParams::FULL;
        assert_eq!(p.tuples_per_page(), 32);
        assert_eq!(p.relation_pages(), 8192);
        assert_eq!(p.relation_bytes(), 32 * 1024 * 1024); // "32 megabytes"
        assert_eq!(p.buffer_pages_for_mb(1), 256);
        assert_eq!(p.buffer_pages_for_mb(32), 8192);
        // "ten tuples per object … approximately 26,000 objects"
        assert_eq!(p.relation_tuples / p.objects, 10);
    }

    #[test]
    fn small_scale_preserves_ratios() {
        let (f, s) = (PaperParams::FULL, PaperParams::SMALL);
        assert_eq!(s.tuples_per_page(), f.tuples_per_page());
        assert_eq!(f.relation_tuples / s.relation_tuples, 4);
        assert_eq!(s.relation_tuples / s.objects, 10);
    }

    #[test]
    fn spec_round_trips_names() {
        let w = WorkloadSpec {
            name: "fig7".into(),
            tuples: 100,
            long_lived: 10,
            lifespan: 1000,
            keys: 10,
            zipf_x100: 0,
            seed: 1,
        };
        assert_eq!(w.clone(), w);
    }

    #[test]
    fn zipf_fixed_point_decodes_to_the_key_distribution() {
        use crate::generate::KeyDistribution;
        let mut w = WorkloadSpec {
            name: "skew".into(),
            tuples: 100,
            long_lived: 0,
            lifespan: 1000,
            keys: 10,
            zipf_x100: 0,
            seed: 1,
        };
        assert_eq!(w.key_distribution(), KeyDistribution::Uniform);
        w.zipf_x100 = 120;
        assert_eq!(w.key_distribution(), KeyDistribution::Zipf(1.2));
    }
}
