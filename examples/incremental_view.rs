//! Incremental maintenance of a materialized valid-time join — the
//! application that motivated the paper's partitioning design (§3.1 and
//! footnote 1: tuples live in their *last* overlapping partition because
//! append-only updates then touch a single partition join).
//!
//! ```text
//! cargo run --example incremental_view
//! ```

use vtjoin::join::partition::intervals::equal_width;
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;

fn iv(s: i64, e: i64) -> Interval {
    Interval::from_raw(s, e).unwrap()
}

fn main() {
    let flights = Schema::new(vec![
        AttrDef::new("gate", AttrType::Int),
        AttrDef::new("flight", AttrType::Int),
    ])
    .unwrap()
    .into_shared();
    let crews = Schema::new(vec![
        AttrDef::new("gate", AttrType::Int),
        AttrDef::new("crew", AttrType::Int),
    ])
    .unwrap()
    .into_shared();

    // A day of gate assignments, minutes 0..1440, four partitions.
    let mk = |schema: &std::sync::Arc<Schema>, n: i64, stride: i64| {
        Relation::from_parts_unchecked(
            schema.clone(),
            (0..n)
                .map(|i| {
                    let start = (i * stride) % 1200;
                    Tuple::new(
                        vec![Value::Int(i % 8), Value::Int(i)],
                        iv(start, start + 90),
                    )
                })
                .collect(),
        )
    };
    let r = mk(&flights, 64, 37);
    let s = mk(&crews, 64, 53);

    let partitions = equal_width(iv(0, 1439), 4);
    let mut view = MaterializedVtJoin::create(&r, &s, partitions).unwrap();
    println!("initial view: {} result tuples", view.result().len());

    // ── Live appends: new facts arrive at the end of the day ──────────────
    let probes_before = view.probes();
    view.insert_outer(vec![Tuple::new(
        vec![Value::Int(3), Value::Int(999)],
        iv(1350, 1439),
    )]);
    println!(
        "append-only insert probed {} partition bucket(s) (of 4)",
        view.probes() - probes_before
    );

    // ── A retroactive correction spanning the whole day ───────────────────
    let probes_before = view.probes();
    view.insert_inner(vec![Tuple::new(
        vec![Value::Int(3), Value::Int(777)],
        iv(0, 1439),
    )]);
    println!(
        "retroactive whole-day insert probed {} partition bucket(s)",
        view.probes() - probes_before
    );

    // ── The incremental view equals recomputation from scratch ────────────
    let mut r_now = r.tuples().to_vec();
    r_now.push(Tuple::new(
        vec![Value::Int(3), Value::Int(999)],
        iv(1350, 1439),
    ));
    let mut s_now = s.tuples().to_vec();
    s_now.push(Tuple::new(
        vec![Value::Int(3), Value::Int(777)],
        iv(0, 1439),
    ));
    let expected = natural_join(
        &Relation::from_parts_unchecked(flights, r_now),
        &Relation::from_parts_unchecked(crews, s_now),
    )
    .unwrap();
    assert!(view.result().multiset_eq(&expected));
    println!(
        "view ≡ full recomputation: {} result tuples ✓",
        view.result().len()
    );
}
