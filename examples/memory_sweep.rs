//! A miniature of the paper's Figure 6: generate paper-style relations,
//! run all three algorithms across a memory sweep, print the I/O bill.
//!
//! ```text
//! cargo run --release --example memory_sweep
//! ```
//! (The full-scale reproduction lives in `vtjoin-bench`'s `figures` binary;
//! this example shows how to drive the machinery from the public API.)

use vtjoin::prelude::*;
use vtjoin::workload::generate::{generate_heap, inner_schema, outer_schema};

fn main() {
    // A 1/32-scale paper workload: 8192 tuples = 256 pages = 1 MB per
    // relation, one-chronon tuples (the §4.2 database).
    let mut params = PaperParams::FULL;
    params.relation_tuples = 8192;
    params.lifespan = 31_250;
    params.objects = 819;

    let disk = SharedDisk::new(params.page_size);
    let cfg = GeneratorConfig::paper(&params, 42);
    let hr = generate_heap(&disk, outer_schema(cfg.pad_bytes), &cfg).unwrap();
    let hs = generate_heap(&disk, inner_schema(cfg.pad_bytes), &cfg.clone().seed(43)).unwrap();
    println!(
        "relations: {} tuples on {} pages each ({} KB)\n",
        hr.tuples(),
        hr.pages(),
        hr.pages() * params.page_size as u64 / 1024
    );

    let ratio = CostRatio::R5;
    println!("buffer   nested-loop    sort-merge     partition");
    // The smallest point keeps Grace partitioning feasible:
    // ⌈256 / (M−1)⌉ partitions need at most M−12 pages of partition size.
    for buffer_pages in [24u64, 32, 64, 128, 256] {
        let cfg = JoinConfig::with_buffer(buffer_pages).ratio(ratio);
        let nl = NestedLoopJoin.execute(&hr, &hs, &cfg).unwrap();
        let sm = SortMergeJoin.execute(&hr, &hs, &cfg).unwrap();
        let pj = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
        assert_eq!(nl.result_tuples, sm.result_tuples);
        assert_eq!(nl.result_tuples, pj.result_tuples);
        println!(
            "{:>4} pp  {:>10}  {:>12}  {:>12}   (cost @ {ratio})",
            buffer_pages,
            nl.cost(ratio),
            sm.cost(ratio),
            pj.cost(ratio),
        );
    }

    println!(
        "\nnote: at this toy scale the outer relation is never more than ~12× \
         the buffer, so nested loop stays competitive; run\n\
         `cargo run --release -p vtjoin-bench --bin figures -- fig6` for the \
         paper-scale sweep where it collapses at small memory."
    );
}
