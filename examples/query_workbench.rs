//! The engine's query layer end to end: load a database, save/restore a
//! relation through the text format, run declarative queries with
//! cost-based join planning, and inspect the I/O bill of each step.
//!
//! ```text
//! cargo run --example query_workbench
//! ```

use vtjoin::engine::query::{Predicate, Query};
use vtjoin::engine::Database;
use vtjoin::prelude::*;
use vtjoin::workload::generate::{
    generate, inner_schema, outer_schema, DurationDistribution, GeneratorConfig, KeyDistribution,
    TimeDistribution,
};
use vtjoin::workload::{from_text, to_text};

fn main() {
    // ── 1. Generate a workload and keep a text copy ─────────────────────────
    let cfg = GeneratorConfig {
        tuples: 12_000,
        long_lived: 400,
        lifespan: 10_000,
        keys: 120,
        key_dist: KeyDistribution::Uniform,
        time_dist: TimeDistribution::Uniform,
        duration_dist: DurationDistribution::Instant,
        pad_bytes: 16,
        seed: 2024,
    };
    let sessions = generate(outer_schema(16), &cfg);
    let alerts = generate(inner_schema(16), &cfg.clone().seed(2025).long_lived(3600));

    // Round-trip the sessions relation through the portable text format.
    let text = to_text(&sessions);
    let restored = from_text(&text).unwrap();
    assert_eq!(restored.tuples(), sessions.tuples());
    println!(
        "text round-trip: {} tuples, {} KB serialized",
        restored.len(),
        text.len() / 1024
    );

    // ── 2. Load into the engine ─────────────────────────────────────────────
    let mut db = Database::new(4096);
    db.create_table("sessions", &restored).unwrap();
    db.create_table("alerts", &alerts).unwrap();
    println!("tables: {:?}", db.table_names());

    // ── 3. A filtered scan ──────────────────────────────────────────────────
    let jc = JoinConfig::with_buffer(256).ratio(CostRatio::R5);
    let long_lived = Query::table("sessions")
        .filter(Predicate::MinDuration(cfg.lifespan as u128 / 4))
        .run(&db, &jc)
        .unwrap();
    println!(
        "\nlong-lived sessions: {} rows ({} I/Os for the scan)",
        long_lived.relation.len(),
        long_lived.io.total_ios()
    );

    // ── 4. A planned join with a pipeline on top ───────────────────────────
    let out = Query::join("sessions", "alerts")
        .filter(Predicate::AttrBetween("key".into(), 0, 19))
        .window(Interval::from_raw(2_000, 8_000).unwrap())
        .project(&["key"])
        .coalesce()
        .run(&db, &jc)
        .unwrap();
    println!(
        "\njoin via {:?}: {} coalesced (key, period) rows, {} I/Os \
         ({} random / {} sequential, cost {} @ 5:1)",
        out.chosen.map(|a| a.name()),
        out.relation.len(),
        out.io.total_ios(),
        out.io.random(),
        out.io.sequential(),
        out.io.cost(CostRatio::R5),
    );
    for t in out.relation.iter().take(5) {
        println!("  {t}");
    }

    // ── 5. Same join at starved memory: the planner switches algorithms ────
    let tight = JoinConfig::with_buffer(12).ratio(CostRatio::R5);
    let starved = Query::join("sessions", "alerts").run(&db, &tight).unwrap();
    println!(
        "\nat 12 buffer pages the planner chose {:?} (cost {})",
        starved.chosen.map(|a| a.name()),
        starved.io.cost(CostRatio::R5),
    );
    if out.chosen != starved.chosen {
        println!("…a different algorithm than at 256 pages: cost-based planning at work");
    }
}
