//! Quickstart: define two valid-time relations, join them three ways, and
//! compare the I/O bills.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vtjoin::prelude::*;

fn main() {
    // ── 1. A tiny personnel database ────────────────────────────────────────
    // Employees worked in departments during intervals; departments had
    // managers during intervals. Chronons are days since an epoch.
    let emp_schema = Schema::new(vec![
        AttrDef::new("emp", AttrType::Str),
        AttrDef::new("dept", AttrType::Str),
    ])
    .unwrap()
    .into_shared();
    let mgr_schema = Schema::new(vec![
        AttrDef::new("dept", AttrType::Str),
        AttrDef::new("mgr", AttrType::Str),
    ])
    .unwrap()
    .into_shared();

    let employees = Relation::new(
        emp_schema,
        vec![
            Tuple::new(vec!["eda".into(), "shipping".into()], iv(0, 120)),
            Tuple::new(vec!["eda".into(), "loading".into()], iv(121, 300)),
            Tuple::new(vec!["ben".into(), "shipping".into()], iv(60, 200)),
            Tuple::new(vec!["kim".into(), "loading".into()], iv(10, 90)),
        ],
    )
    .unwrap();
    let managers = Relation::new(
        mgr_schema,
        vec![
            Tuple::new(vec!["shipping".into(), "ann".into()], iv(0, 100)),
            Tuple::new(vec!["shipping".into(), "raj".into()], iv(101, 365)),
            Tuple::new(vec!["loading".into(), "zoe".into()], iv(50, 250)),
        ],
    )
    .unwrap();

    // ── 2. The valid-time natural join, in memory ──────────────────────────
    // Who worked under which manager, and exactly when? Tuples join when
    // they match on `dept` AND their intervals overlap; the result carries
    // the maximal overlap.
    let joined = vtjoin::model::algebra::natural_join(&employees, &managers).unwrap();
    println!("employees ⋈ᵛ managers ({} rows):", joined.len());
    for t in joined.iter() {
        println!("  {t}");
    }

    // ── 3. The same join, on disk, with I/O accounting ─────────────────────
    // Load both relations onto the simulated disk and run the paper's three
    // evaluation algorithms. They must produce identical results; they pay
    // different I/O bills.
    let disk = SharedDisk::new(4096);
    let hr = HeapFile::bulk_load(&disk, &employees).unwrap();
    let hs = HeapFile::bulk_load(&disk, &managers).unwrap();
    let cfg = JoinConfig::with_buffer(16)
        .ratio(CostRatio::R5)
        .collecting();

    println!("\nalgorithm        result  random  sequential  cost@5:1");
    let algorithms: Vec<Box<dyn JoinAlgorithm>> = vec![
        Box::new(NestedLoopJoin),
        Box::new(SortMergeJoin),
        Box::new(PartitionJoin::default()),
    ];
    for algo in algorithms {
        let report = algo.execute(&hr, &hs, &cfg).unwrap();
        assert!(report.result.as_ref().unwrap().multiset_eq(&joined));
        println!(
            "{:<15}  {:>6}  {:>6}  {:>10}  {:>8}",
            report.algorithm,
            report.result_tuples,
            report.io.random(),
            report.io.sequential(),
            report.cost(CostRatio::R5),
        );
    }
    println!("\nall three algorithms produced the same relation ✓");
}

fn iv(s: i64, e: i64) -> Interval {
    Interval::from_raw(s, e).unwrap()
}
