//! A tour of the temporal algebra: coalescing, timeslices, semijoins,
//! outerjoins, and temporal aggregation over a salary history.
//!
//! ```text
//! cargo run --example temporal_algebra
//! ```

use vtjoin::model::algebra::{
    self, antijoin, coalesce, count_over_time, outerjoin, project, select_interval, semijoin,
    JoinSide,
};
use vtjoin::prelude::*;

fn iv(s: i64, e: i64) -> Interval {
    Interval::from_raw(s, e).unwrap()
}

fn main() {
    // Salary history: (employee, salary | valid time), months since hire.
    let sal_schema = Schema::new(vec![
        AttrDef::new("emp", AttrType::Str),
        AttrDef::new("salary", AttrType::Int),
    ])
    .unwrap()
    .into_shared();
    let salaries = Relation::new(
        sal_schema,
        vec![
            Tuple::new(vec!["eda".into(), Value::Int(50)], iv(0, 11)),
            Tuple::new(vec!["eda".into(), Value::Int(50)], iv(12, 23)), // same salary, adjacent
            Tuple::new(vec!["eda".into(), Value::Int(60)], iv(24, 47)),
            Tuple::new(vec!["ben".into(), Value::Int(55)], iv(6, 29)),
            Tuple::new(vec!["kim".into(), Value::Int(70)], iv(18, 35)),
        ],
    )
    .unwrap();

    // ── Coalescing: canonical form ──────────────────────────────────────────
    // Eda's two 50k periods are value-equivalent and adjacent: one fact.
    let canonical = coalesce(&salaries);
    println!("coalesced salary history ({} rows):", canonical.len());
    for t in canonical.iter() {
        println!("  {t}");
    }

    // ── Timeslice: the world at month 20 ────────────────────────────────────
    let at20 = salaries.timeslice(Chronon::new(20));
    println!(
        "\nsnapshot at month 20: {} employees on payroll",
        at20.len()
    );

    // ── Temporal window selection ──────────────────────────────────────────
    let year2 = select_interval(&salaries, iv(12, 23));
    println!("year-two payroll fragments: {}", year2.len());

    // ── Projection + coalescing: when was each person employed at all? ─────
    let employed = coalesce(&project(&salaries, &["emp"]).unwrap());
    println!("\nemployment periods:");
    for t in employed.iter() {
        println!("  {t}");
    }

    // ── Semijoin / antijoin: bonus periods ──────────────────────────────────
    // Bonuses were payable while a project assignment existed.
    let prj_schema = Schema::new(vec![
        AttrDef::new("emp", AttrType::Str),
        AttrDef::new("project", AttrType::Str),
    ])
    .unwrap()
    .into_shared();
    let projects = Relation::new(
        prj_schema,
        vec![
            Tuple::new(vec!["eda".into(), "apollo".into()], iv(10, 30)),
            Tuple::new(vec!["ben".into(), "gemini".into()], iv(0, 10)),
        ],
    )
    .unwrap();
    let with_bonus = semijoin(&salaries, &projects).unwrap();
    let without_bonus = antijoin(&salaries, &projects).unwrap();
    println!("\nsalary fragments with a concurrent project:");
    for t in with_bonus.iter() {
        println!("  {t}");
    }
    println!("…and without: {} fragments", without_bonus.len());

    // ── Outerjoin: salary history with (possibly missing) project info ─────
    let oj = outerjoin(&salaries, &projects, JoinSide::Left).unwrap();
    let dangling = oj.iter().filter(|t| t.value(2).is_null()).count();
    println!(
        "\nleft outerjoin rows: {} ({dangling} project-less fragments)",
        oj.len()
    );

    // ── Temporal aggregation: headcount over time ──────────────────────────
    println!("\nheadcount over time:");
    for seg in count_over_time(&salaries) {
        println!("  {} → {} employees", seg.interval, seg.value);
    }

    // ── Generalized Allen joins ────────────────────────────────────────────
    // Which project assignments STARTED DURING a salary period? (strictly
    // inside, per Allen's `during`.)
    let during = algebra::allen_join(
        &project(&salaries, &["salary"]).unwrap(),
        &projects,
        vtjoin::model::allen::AllenSet::only(AllenRelation::Contains),
    )
    .unwrap();
    println!(
        "\nsalary periods strictly containing a project assignment: {}",
        during.len()
    );
}

use vtjoin::model::AllenRelation;
