//! `vtjoin` — a command-line front end for the library.
//!
//! ```text
//! vtjoin gen  --tuples 1000 --long-lived 100 --keys 50 --side outer -o r.vt
//! vtjoin info r.vt
//! vtjoin join r.vt s.vt --algorithm partition --buffer 64 --ratio 5 [-o out.vt]
//! vtjoin join r.vt s.vt --predicate meets-or-overlaps --explain
//! vtjoin serve --requests reqs.txt --concurrency 4
//! vtjoin slice r.vt --at 4200
//! vtjoin coalesce r.vt -o canonical.vt
//! ```
//!
//! Relations travel in the portable text format of `vtjoin::workload::io`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vtjoin::model::algebra;
use vtjoin::prelude::*;
use vtjoin::workload::generate::{
    generate, inner_schema, outer_schema, DurationDistribution, GeneratorConfig, KeyDistribution,
    TimeDistribution,
};
use vtjoin::workload::{from_text, to_text};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), AnyError> {
    let Some(cmd) = args.first() else {
        return Err(usage().into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "info" => cmd_info(rest),
        "join" => cmd_join(rest),
        "serve" => cmd_serve(rest),
        "slice" => cmd_slice(rest),
        "coalesce" => cmd_coalesce(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> String {
    "usage:\n  \
     vtjoin gen --tuples N [--long-lived N] [--keys N] [--lifespan N] \
     [--duration MAX] [--seed N] [--side outer|inner] -o FILE\n  \
     vtjoin info FILE\n  \
     vtjoin join OUTER INNER [--algorithm nested-loop|sort-merge|partition|time-index|auto] \
     [--predicate PRED] [--layout row|columnar] [--buffer PAGES] [--ratio N] \
     [--faults PERMILLE] [--fault-seed N] \
     [--retries N] [--explain] [--stats-json FILE] [-o FILE]\n  \
     vtjoin join OUTER INNER --threads N [--partitions N] [--kernel auto|hash|sweep] \
     [--grid auto|1xN|KxN|<k>xN] [--predicate PRED] [--layout row|columnar] [--explain] \
     [--stats-json FILE] [-o FILE]   (in-memory parallel grid-partition join)\n  \
     vtjoin join OUTER INNER --op left|full|semi|anti|aggregate:count|aggregate:sum:ATTR|\
aggregate:min:ATTR|aggregate:max:ATTR [--threads N] [--partitions N] [--predicate PRED] \
     [--layout row|columnar] [--explain] [--stats-json FILE] [-o FILE]   \
     (temporal outer/semi/anti join or aggregation; see docs/OPERATORS.md)\n  \
     vtjoin serve --requests FILE [--concurrency N] [--pool-pages N] [--max-queue N] \
     [--buffer PAGES] [--threads-per-query N] [--kernel auto|hash|sweep] \
     [--grid auto|1xN|KxN|<k>xN] [--layout row|columnar] \
     [--priority interactive|batch|background] \
     [--deadline-ms MILLIS] [--stream] [--explain] [--stats-json FILE]\n  \
     vtjoin slice FILE --at CHRONON\n  \
     vtjoin coalesce FILE [-o FILE]\n\n\
     PRED is an Allen predicate: one or more of before, meets, overlaps, starts,\n\
     during, finishes, equals, finished-by, contains, started-by, overlapped-by,\n\
     met-by, after joined with `-or-` (e.g. `meets-or-overlaps`), or `intersects`\n\
     (the default, the valid-time natural join), or `before-within-N` /\n\
     `after-within-N` for a bounded gap. See docs/PREDICATES.md."
        .to_owned()
}

/// Tiny flag parser: `--name value` pairs plus positionals.
struct Flags {
    positional: Vec<String>,
    named: Vec<(String, String)>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["explain", "stream"];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, AnyError> {
        let mut positional = Vec::new();
        let mut named = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    named.push((name.to_owned(), "true".to_owned()));
                    i += 1;
                    continue;
                }
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                named.push((name.to_owned(), value.clone()));
                i += 2;
            } else if a == "-o" {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| "-o needs a value".to_owned())?;
                named.push(("out".to_owned(), value.clone()));
                i += 2;
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Flags { positional, named })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.named
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, AnyError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => Ok(v
                .parse::<u64>()
                .map_err(|_| format!("--{name}: bad number `{v}`"))?),
        }
    }
}

/// `--op OPERATOR` (default: `inner`). Non-inner operators route to the
/// dangling-tracking operator executor.
fn parse_op(flags: &Flags) -> Result<vtjoin::model::Operator, AnyError> {
    match flags.get("op") {
        None => Ok(vtjoin::model::Operator::Inner),
        Some(o) => o
            .parse::<vtjoin::model::Operator>()
            .map_err(|e| format!("--op: {e}").into()),
    }
}

/// `--predicate PRED` (default: `intersects`, the natural join).
fn parse_predicate(flags: &Flags) -> Result<JoinPredicate, AnyError> {
    match flags.get("predicate") {
        None => Ok(JoinPredicate::intersects()),
        Some(p) => p
            .parse::<JoinPredicate>()
            .map_err(|e| format!("--predicate: {e}").into()),
    }
}

/// `--layout row|columnar` (default: columnar). Both layouts produce
/// byte-identical results; `row` exists for A/B comparison and as an
/// escape hatch.
fn parse_layout(flags: &Flags) -> Result<vtjoin::join::Layout, AnyError> {
    match flags.get("layout") {
        None => Ok(vtjoin::join::Layout::default()),
        Some(l) => vtjoin::join::Layout::parse(l)
            .ok_or_else(|| format!("--layout must be row|columnar, got `{l}`").into()),
    }
}

fn load(path: &str) -> Result<Relation, AnyError> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(from_text(&text)?)
}

fn save(rel: &Relation, path: &str) -> Result<(), AnyError> {
    std::fs::write(PathBuf::from(path), to_text(rel))
        .map_err(|e| format!("writing {path}: {e}").into())
}

fn cmd_gen(args: &[String]) -> Result<(), AnyError> {
    let flags = Flags::parse(args)?;
    let tuples = flags.get_u64("tuples", 1000)?;
    let cfg = GeneratorConfig {
        tuples,
        long_lived: flags.get_u64("long-lived", 0)?,
        lifespan: flags.get_u64("lifespan", 100_000)? as i64,
        keys: flags.get_u64("keys", (tuples / 10).max(1))?,
        key_dist: KeyDistribution::Uniform,
        time_dist: TimeDistribution::Uniform,
        duration_dist: match flags.get_u64("duration", 1)? {
            0 | 1 => DurationDistribution::Instant,
            max => DurationDistribution::UniformUpTo(max as i64),
        },
        pad_bytes: flags.get_u64("pad", 16)? as usize,
        seed: flags.get_u64("seed", 42)?,
    };
    let schema = match flags.get("side").unwrap_or("outer") {
        "outer" => outer_schema(cfg.pad_bytes),
        "inner" => inner_schema(cfg.pad_bytes),
        other => return Err(format!("--side must be outer|inner, got `{other}`").into()),
    };
    let rel = generate(schema, &cfg);
    let out = flags.get("out").ok_or("gen needs -o FILE")?;
    save(&rel, out)?;
    println!("wrote {} tuples to {out}", rel.len());
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), AnyError> {
    let flags = Flags::parse(args)?;
    let path = flags.positional.first().ok_or("info needs a FILE")?;
    let rel = load(path)?;
    println!("schema    {}", rel.schema());
    println!("tuples    {}", rel.len());
    if let Some(lifespan) = rel.lifespan() {
        println!("lifespan  {lifespan}");
    }
    let long = rel.iter().filter(|t| t.lifespan() > 1).count();
    println!("long-lived (≥2 chronons)  {long}");
    let segs = algebra::count_over_time(&rel);
    if let Some(peak) = segs.iter().max_by_key(|s| s.value) {
        println!("peak concurrency  {} during {}", peak.value, peak.interval);
    }
    Ok(())
}

fn cmd_join(args: &[String]) -> Result<(), AnyError> {
    let flags = Flags::parse(args)?;
    let [outer_path, inner_path] = flags.positional.as_slice() else {
        return Err("join needs OUTER and INNER files".into());
    };
    let r = load(outer_path)?;
    let s = load(inner_path)?;

    // `--op` selects a non-inner member of the operator family (outer/
    // semi/anti join or temporal aggregation); those always run the
    // in-memory operator executor, never the disk algorithms.
    let op = parse_op(&flags)?;
    if !op.is_inner() {
        return join_operator(&flags, &r, &s, &op);
    }

    // `--threads` selects the in-memory parallel executor (work-stealing
    // hash-probed partition join over replicated partitions); the
    // disk-based algorithms below ignore it.
    let threads = flags.get_u64("threads", 0)?;
    if threads > 0 {
        return join_parallel(&flags, &r, &s, threads as usize);
    }

    let buffer = flags.get_u64("buffer", 256)?;
    let ratio = CostRatio::new(flags.get_u64("ratio", 5)?);
    let pred = parse_predicate(&flags)?;
    let cfg = JoinConfig::with_buffer(buffer)
        .ratio(ratio)
        .predicate(pred)
        .layout(parse_layout(&flags)?)
        .collecting();

    let disk = SharedDisk::new(4096);
    let hr = HeapFile::bulk_load(&disk, &r)?;
    let hs = HeapFile::bulk_load(&disk, &s)?;

    // Fault injection arms AFTER the bulk load so the inputs themselves are
    // intact: the join then runs against a disk that fails reads and writes
    // (and tears a fraction of writes) at the requested permille rate.
    let fault_permille = flags.get_u64("faults", 0)?;
    if fault_permille > 0 {
        if fault_permille > 1000 {
            return Err("--faults: rate is permille and must be ≤ 1000".into());
        }
        disk.set_retry_policy(vtjoin::storage::RetryPolicy {
            max_attempts: flags.get_u64("retries", 4)?.max(1) as u32,
        });
        disk.set_fault_config(Some(vtjoin::storage::FaultConfig {
            seed: flags.get_u64("fault-seed", 0xFA017)?,
            read_fail_permille: fault_permille as u32,
            write_fail_permille: fault_permille as u32,
            torn_write_permille: (fault_permille / 4) as u32,
        }));
    }

    let name = flags.get("algorithm").unwrap_or("auto");
    let algo: Box<dyn JoinAlgorithm> = match name {
        "nested-loop" => Box::new(NestedLoopJoin),
        "sort-merge" => Box::new(SortMergeJoin),
        "partition" => Box::new(PartitionJoin::default()),
        "time-index" => Box::new(vtjoin::join::TimeIndexJoin::default()),
        // `auto` honours the predicate: algorithms that cannot evaluate it
        // (sort-merge for non-natural intersections; everything but nested
        // loop for sequence/mixed templates) are never chosen. Forcing one
        // with `--algorithm` instead surfaces the algorithm's own typed
        // precondition error.
        "auto" => {
            use vtjoin::engine::{choose_algorithm, partition_feasible, Algorithm};
            let mut a = choose_algorithm(hr.pages(), hs.pages(), buffer, ratio);
            if !pred.is_natural() {
                a = if !pred.partitioning_eligible() {
                    Algorithm::NestedLoop
                } else if a == Algorithm::SortMerge {
                    if partition_feasible(hr.pages(), buffer) {
                        Algorithm::Partition
                    } else {
                        Algorithm::NestedLoop
                    }
                } else {
                    a
                };
            }
            a.instantiate()
        }
        other => return Err(format!("unknown algorithm `{other}`").into()),
    };
    // The partition join exposes its planner output, which the execution
    // report turns into plan + predicted-vs-actual deviation sections.
    let (report, exec_report) = if algo.name() == "partition" {
        let (report, planner) = PartitionJoin::default().execute_with_plan(&hr, &hs, &cfg)?;
        let er = partition_execution_report(&report, &cfg, &planner, hr.pages());
        (report, er)
    } else {
        let report = algo.execute(&hr, &hs, &cfg)?;
        let er = execution_report(&report, &cfg);
        (report, er)
    };

    if flags.get("explain").is_some() {
        print!("{}", exec_report.render_explain());
    } else {
        println!(
            "{}: {} result tuples, {} random + {} sequential I/Os, cost {} @ {ratio}",
            report.algorithm,
            report.result_tuples,
            report.io.random(),
            report.io.sequential(),
            report.cost(ratio),
        );
        for phase in &report.phases {
            println!("  {:<12} {}", phase.name, phase.io);
        }
        for (k, v) in &report.notes {
            println!("  {k:<24} {v}");
        }
    }
    if let Some(path) = flags.get("stats-json") {
        std::fs::write(PathBuf::from(path), exec_report.to_json_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote stats to {path}");
    }
    if let Some(out) = flags.get("out") {
        save(&report.result.expect("collected"), out)?;
        println!("wrote result to {out}");
    }
    Ok(())
}

/// The `--threads` path of `join`: equal-width time partitions over the
/// inputs' combined lifespan, crossed with a cost-chosen (or forced)
/// key-hash axis into a 2D grid, joined by the parallel executor and
/// reported through the same explain/stats-json surface as the disk
/// algorithms.
fn join_parallel(
    flags: &Flags,
    r: &Relation,
    s: &Relation,
    threads: usize,
) -> Result<(), AnyError> {
    use vtjoin::join::partition::plan_grid;

    let partitions = flags.get_u64("partitions", (threads as u64 * 4).max(16))?;
    // Kernel policy: `auto` gates per partition on estimated
    // duplicates-per-key; `hash`/`sweep` force one kernel everywhere.
    let kernel_name = flags.get("kernel").unwrap_or("auto");
    let kernel = vtjoin::join::KernelChoice::parse(kernel_name)
        .ok_or_else(|| format!("--kernel must be auto|hash|sweep, got `{kernel_name}`"))?;
    // Grid policy: `auto` lets the cost model pick the key-bucket count
    // (possibly collapsing to time-only), `1xN` forces time-only, `KxN`
    // forces the key axis on, `<k>xN` fixes the bucket count.
    let grid_name = flags.get("grid").unwrap_or("auto");
    let grid = vtjoin::join::partition::GridChoice::parse(grid_name)
        .ok_or_else(|| format!("--grid must be auto|1xN|KxN|<k>xN, got `{grid_name}`"))?;
    let hull = match (r.lifespan(), s.lifespan()) {
        (Some(a), Some(b)) => {
            Interval::new(a.start().min(b.start()), a.end().max(b.end())).expect("ordered hull")
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => Interval::ALL,
    };
    let intervals = vtjoin::join::partition::intervals::equal_width(hull, partitions);
    let spec = vtjoin::join::common::JoinSpec::natural(r.schema(), s.schema())?;
    let plan = plan_grid(&spec, r, s, &intervals, threads, grid).plan;
    // The natural join keeps the forced-kernel surface; a non-natural
    // predicate routes through the predicate-aware executor (filtered
    // kernels under the auto gate, or the sort-merge fallback for
    // sequence/mixed templates, where neither time partitioning nor the
    // key grid applies).
    let pred = parse_predicate(flags)?;
    let layout = parse_layout(flags)?;
    let (result, exec_report) = if pred.is_natural() {
        vtjoin::engine::grid_execution_report_layout(r, s, &plan, threads, kernel, &pred, layout)?
    } else {
        vtjoin::engine::grid_execution_report_layout(
            r,
            s,
            &plan,
            threads,
            vtjoin::join::KernelChoice::Auto,
            &pred,
            layout,
        )?
    };

    if flags.get("explain").is_some() {
        print!("{}", exec_report.render_explain());
    } else {
        println!(
            "parallel: {} result tuples, {} partitions on {} workers",
            result.len(),
            intervals.len(),
            exec_report.workers.len(),
        );
        if let Some(g) = exec_report.grid {
            println!(
                "  grid ({grid_name}): {}x{} = {} cells ({} occupied), \
                 max cell {}% of est cost, replication {}.{:02}x",
                g.key_buckets,
                g.time_partitions,
                g.cells,
                g.occupied_cells,
                g.max_cell_share_percent,
                g.replication_factor_x100 / 100,
                g.replication_factor_x100 % 100,
            );
        }
        for phase in &exec_report.phases {
            println!("  {:<12} {} µs", phase.name, phase.wall_micros);
        }
        if let Some(k) = exec_report.kernel {
            println!(
                "  kernel ({kernel_name}): {} hash / {} sweep partitions, {} batches",
                k.hash_partitions, k.sweep_partitions, k.batches_flushed
            );
        }
        if let Some(sk) = &exec_report.skew {
            println!(
                "  skew: heaviest partition {}% of est cost, utilization {}%",
                sk.max_partition_share_percent, sk.utilization_percent
            );
        }
        if let Some(pd) = &exec_report.predicate {
            println!(
                "  predicate {} (template {}): {} filter hits / {} checks, \
                 {} / {} merge pairs emitted",
                pd.predicate,
                pd.template,
                pd.filter_hits,
                pd.filter_checks,
                pd.merge_pairs_emitted,
                pd.merge_pairs_scanned,
            );
        }
    }
    if let Some(path) = flags.get("stats-json") {
        std::fs::write(PathBuf::from(path), exec_report.to_json_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote stats to {path}");
    }
    if let Some(out) = flags.get("out") {
        save(&result, out)?;
        println!("wrote result to {out}");
    }
    Ok(())
}

/// The `--op` path of `join`: equal-width time partitions crossed with a
/// cost-chosen key-bucket axis (the same planning as the parallel inner
/// join), executed by the dangling-tracking operator executor. Results
/// are byte-identical to the `vtjoin::model::algebra` oracle for the
/// requested operator.
fn join_operator(
    flags: &Flags,
    r: &Relation,
    s: &Relation,
    op: &vtjoin::model::Operator,
) -> Result<(), AnyError> {
    use vtjoin::join::partition::plan_grid;

    let threads = flags.get_u64("threads", 1)?.max(1) as usize;
    let partitions = flags.get_u64("partitions", (threads as u64 * 4).max(16))?;
    let pred = parse_predicate(flags)?;
    let layout = parse_layout(flags)?;
    let hull = match (r.lifespan(), s.lifespan()) {
        (Some(a), Some(b)) => {
            Interval::new(a.start().min(b.start()), a.end().max(b.end())).expect("ordered hull")
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => Interval::ALL,
    };
    let intervals = vtjoin::join::partition::intervals::equal_width(hull, partitions);
    let spec = vtjoin::join::common::JoinSpec::natural(r.schema(), s.schema())?;
    let plan = plan_grid(
        &spec,
        r,
        s,
        &intervals,
        threads,
        vtjoin::join::partition::GridChoice::Auto,
    )
    .plan;
    let (result, exec_report) = vtjoin::engine::operator_execution_report(
        r,
        s,
        op,
        &pred,
        &plan.intervals,
        plan.key_buckets as usize,
        threads,
        layout,
    )?;

    if flags.get("explain").is_some() {
        print!("{}", exec_report.render_explain());
    } else {
        let o = exec_report
            .operator
            .as_ref()
            .expect("operator runs always carry their section");
        println!(
            "{op}: {} result tuples, {} cells on {} workers{}",
            result.len(),
            o.cells,
            o.workers,
            if o.fallback_nested {
                " (nested fallback)"
            } else {
                ""
            },
        );
        println!(
            "  pairs {} | dangling outer {} ({} stitched), inner {} ({} stitched)",
            o.pairs_logged, o.outer_dangling, o.stitched_outer, o.inner_dangling, o.stitched_inner,
        );
        if o.timeline_events > 0 || o.agg_segments > 0 {
            println!(
                "  timeline: {} events, {} checkpoints, {} segments",
                o.timeline_events, o.timeline_checkpoints, o.agg_segments,
            );
        }
    }
    if let Some(path) = flags.get("stats-json") {
        std::fs::write(PathBuf::from(path), exec_report.to_json_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote stats to {path}");
    }
    if let Some(out) = flags.get("out") {
        save(&result, out)?;
        println!("wrote result to {out}");
    }
    Ok(())
}

/// `serve`: run a batch of join requests through the concurrent
/// [`vtjoin::engine::JoinService`] — admission-controlled against a shared
/// page pool, with plan-cache reuse across repeated table pairs.
///
/// The requests file is line-oriented (`#` comments and blank lines
/// ignored):
///
/// ```text
/// load r r.vt                  # create table `r` from a portable-text relation
/// load s s.vt
/// join r s                     # submit r ⋈ s (submitted concurrently)
/// join r s                     # repeated pairs hit the plan cache
/// join r s during              # optional Allen predicate (cached per predicate)
/// join r s grid=4xN            # per-request grid override (cached per grid choice)
/// join r s priority=interactive  # priority class (interactive|batch|background)
/// join r s deadline=50         # admission deadline in milliseconds
/// join r s op=left             # operator family: left|full|semi|anti|aggregate:FN
/// ```
///
/// `--priority CLASS` and `--deadline-ms MILLIS` set the defaults for
/// requests that carry no per-request token; `--stream` delivers results
/// incrementally, printing batch-level progress as each wire unit lands.
fn cmd_serve(args: &[String]) -> Result<(), AnyError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;
    use vtjoin::engine::{Database, JoinService, Priority, ServiceConfig, SubmitOptions};
    use vtjoin::join::partition::GridChoice;

    let flags = Flags::parse(args)?;
    let requests_path = flags.get("requests").ok_or("serve needs --requests FILE")?;
    let text = std::fs::read_to_string(Path::new(requests_path))
        .map_err(|e| format!("reading {requests_path}: {e}"))?;

    // Defaults for requests that carry no per-request token.
    let default_priority: Priority = {
        let name = flags.get("priority").unwrap_or("batch");
        name.parse().map_err(|e| format!("--priority: {e}"))?
    };
    let default_deadline = match flags.get_u64("deadline-ms", 0)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let stream = flags.get("stream").is_some();

    let mut db = Database::new(4096);
    let mut joins: Vec<(String, String, JoinPredicate, SubmitOptions)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["load", name, path] => {
                let rel = load(path)?;
                db.create_table(name, &rel)?;
            }
            // `join OUTER INNER [PREDICATE] [grid=] [priority=] [deadline=]
            // [op=]`: the optional trailing tokens are an Allen predicate
            // and/or per-request overrides, in any order.
            ["join", outer, inner, opts @ ..] if opts.len() <= 5 => {
                let mut pred = JoinPredicate::intersects();
                let mut submit = SubmitOptions {
                    priority: default_priority,
                    deadline: default_deadline,
                    ..SubmitOptions::default()
                };
                let mut saw_pred = false;
                for opt in opts {
                    if let Some(g) = opt.strip_prefix("grid=") {
                        if submit.grid.is_some() {
                            return Err(format!(
                                "{requests_path}:{}: duplicate grid= option",
                                lineno + 1
                            )
                            .into());
                        }
                        submit.grid = Some(GridChoice::parse(g).ok_or_else(|| {
                            format!(
                                "{requests_path}:{}: bad grid choice `{g}` \
                                 (expected auto|1xN|KxN|<k>xN)",
                                lineno + 1
                            )
                        })?);
                    } else if let Some(p) = opt.strip_prefix("priority=") {
                        submit.priority = p
                            .parse()
                            .map_err(|e| format!("{requests_path}:{}: {e}", lineno + 1))?;
                    } else if let Some(ms) = opt.strip_prefix("deadline=") {
                        let ms: u64 = ms.parse().map_err(|_| {
                            format!(
                                "{requests_path}:{}: bad deadline `{ms}` \
                                 (expected milliseconds)",
                                lineno + 1
                            )
                        })?;
                        submit.deadline = Some(Duration::from_millis(ms));
                    } else if let Some(o) = opt.strip_prefix("op=") {
                        submit.op = o
                            .parse::<vtjoin::model::Operator>()
                            .map_err(|e| format!("{requests_path}:{}: {e}", lineno + 1))?;
                    } else {
                        if saw_pred {
                            return Err(format!(
                                "{requests_path}:{}: more than one predicate",
                                lineno + 1
                            )
                            .into());
                        }
                        saw_pred = true;
                        pred = opt.parse::<JoinPredicate>().map_err(|e| {
                            format!("{requests_path}:{}: bad predicate: {e}", lineno + 1)
                        })?;
                    }
                }
                joins.push(((*outer).to_owned(), (*inner).to_owned(), pred, submit));
            }
            _ => {
                return Err(format!(
                    "{requests_path}:{}: bad request `{line}` \
                     (expected `load NAME FILE` or `join OUTER INNER \
                     [PREDICATE] [grid=CHOICE] [priority=CLASS] [deadline=MS] \
                     [op=OPERATOR]`)",
                    lineno + 1
                )
                .into())
            }
        }
    }

    let concurrency = flags.get_u64("concurrency", 4)? as usize;
    if concurrency == 0 {
        return Err(
            "--concurrency must be at least 1 (0 submitter threads can serve nothing)"
                .to_string()
                .into(),
        );
    }
    let kernel_name = flags.get("kernel").unwrap_or("auto");
    let kernel = vtjoin::join::KernelChoice::parse(kernel_name)
        .ok_or_else(|| format!("--kernel must be auto|hash|sweep, got `{kernel_name}`"))?;
    let mut cfg = ServiceConfig::new(
        JoinConfig::with_buffer(flags.get_u64("buffer", 256)?),
        flags.get_u64("pool-pages", 4096)?,
    );
    cfg.max_queue = flags.get_u64("max-queue", cfg.max_queue)?;
    let threads_per_query = flags.get_u64("threads-per-query", cfg.threads_per_query as u64)?;
    if threads_per_query == 0 {
        return Err(
            "--threads-per-query must be at least 1 (0 worker threads can run no join)"
                .to_string()
                .into(),
        );
    }
    cfg.threads_per_query = threads_per_query as usize;
    cfg.kernel = kernel;
    cfg.layout = parse_layout(&flags)?;
    let grid_name = flags.get("grid").unwrap_or("auto");
    cfg.grid = GridChoice::parse(grid_name)
        .ok_or_else(|| format!("--grid must be auto|1xN|KxN|<k>xN, got `{grid_name}`"))?;
    let svc = JoinService::new(db, cfg);

    // Fixed-size outcome slots keep the printed order deterministic (the
    // request-file order) no matter how the submitter threads interleave.
    let outcomes: Vec<Mutex<String>> = joins.iter().map(|_| Mutex::new(String::new())).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..concurrency.min(joins.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((outer, inner, pred, submit)) = joins.get(i) else {
                    break;
                };
                let mut tag = if pred.is_natural() {
                    String::new()
                } else {
                    format!(" {pred}")
                };
                if !submit.op.is_inner() {
                    tag.push_str(&format!(" op={}", submit.op));
                }
                if let Some(g) = submit.grid {
                    tag.push_str(&format!(" grid={g}"));
                }
                if submit.priority != Priority::default() {
                    tag.push_str(&format!(" priority={}", submit.priority));
                }
                if let Some(d) = submit.deadline {
                    tag.push_str(&format!(" deadline={}ms", d.as_millis()));
                }
                let line = if stream {
                    // Progress lines interleave across submitters (they are
                    // progress); the summary slot keeps file order.
                    let mut batches = 0u64;
                    let mut sink = |batch: Vec<vtjoin::model::Tuple>| {
                        batches += 1;
                        println!(
                            "  stream {outer} {inner}{tag}: batch {batches}, {} tuples",
                            batch.len()
                        );
                    };
                    match svc.submit_streamed(outer, inner, pred, submit, &mut sink) {
                        Ok(resp) => format!(
                            "join {outer} {inner}{tag}: {} tuples in {} batches, plan {:?}, \
                             admission {:?}, {} partitions x {} key buckets, {} pages reserved",
                            resp.tuples,
                            resp.batches,
                            resp.plan,
                            resp.admission,
                            resp.partitions,
                            resp.key_buckets,
                            resp.reserved_pages,
                        ),
                        Err(e) => format!("join {outer} {inner}{tag}: FAILED: {e}"),
                    }
                } else {
                    match svc.submit_opts(outer, inner, pred, submit) {
                        Ok(resp) => {
                            let op_tail = match &resp.operator {
                                Some(o) => format!(
                                    ", dangling outer {} / inner {} ({} stitched)",
                                    o.outer_dangling,
                                    o.inner_dangling,
                                    o.stitched_outer + o.stitched_inner,
                                ),
                                None => String::new(),
                            };
                            format!(
                                "join {outer} {inner}{tag}: {} tuples, plan {:?}, \
                                 admission {:?}, {} partitions x {} key buckets, \
                                 {} pages reserved{op_tail}",
                                resp.result.len(),
                                resp.plan,
                                resp.admission,
                                resp.partitions,
                                resp.key_buckets,
                                resp.reserved_pages,
                            )
                        }
                        Err(e) => format!("join {outer} {inner}{tag}: FAILED: {e}"),
                    }
                };
                *outcomes[i].lock().unwrap_or_else(|e| e.into_inner()) = line;
            });
        }
    });
    for slot in &outcomes {
        println!("{}", slot.lock().unwrap_or_else(|e| e.into_inner()));
    }

    let report = svc.execution_report();
    if flags.get("explain").is_some() {
        print!("{}", report.render_explain());
    } else {
        let sec = report
            .service
            .as_ref()
            .expect("service report carries its section");
        println!(
            "service: {} requests ({} admitted, {} queued, {} rejected), \
             {} completed, {} failed",
            sec.requests, sec.admitted, sec.queued, sec.rejected, sec.completed, sec.failed,
        );
        println!(
            "  plan cache: {} hits / {} misses ({} invalidations)",
            sec.cache_hits, sec.cache_misses, sec.cache_invalidations,
        );
        println!(
            "  pool: {} pages, high water {} pages / {} queued requests",
            sec.pool_pages, sec.pool_pages_high_water, sec.queue_depth_high_water,
        );
        println!(
            "  priorities: {} interactive / {} batch / {} background, \
             shed {} deadline / {} retry-after",
            sec.interactive_requests,
            sec.batch_requests,
            sec.background_requests,
            sec.shed_deadline,
            sec.shed_retry_after,
        );
        if stream {
            println!(
                "  streamed: {} batches, {} tuples",
                sec.streamed_batches, sec.streamed_tuples,
            );
        }
    }
    if let Some(path) = flags.get("stats-json") {
        std::fs::write(PathBuf::from(path), report.to_json_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote stats to {path}");
    }
    Ok(())
}

fn cmd_slice(args: &[String]) -> Result<(), AnyError> {
    let flags = Flags::parse(args)?;
    let path = flags.positional.first().ok_or("slice needs a FILE")?;
    let at = flags
        .get("at")
        .ok_or("slice needs --at CHRONON")?
        .parse::<i64>()
        .map_err(|_| "--at: bad chronon")?;
    let rel = load(path)?;
    let snap = rel.timeslice(Chronon::new(at));
    println!("{} rows valid at {at}:", snap.len());
    for t in snap.iter().take(50) {
        println!("  {t}");
    }
    if snap.len() > 50 {
        println!("  … and {} more", snap.len() - 50);
    }
    Ok(())
}

fn cmd_coalesce(args: &[String]) -> Result<(), AnyError> {
    let flags = Flags::parse(args)?;
    let path = flags.positional.first().ok_or("coalesce needs a FILE")?;
    let rel = load(path)?;
    let out = algebra::coalesce(&rel);
    println!("{} tuples → {} coalesced", rel.len(), out.len());
    if let Some(dest) = flags.get("out") {
        save(&out, dest)?;
        println!("wrote {dest}");
    }
    Ok(())
}
