//! # vtjoin — efficient evaluation of the valid-time natural join
//!
//! A complete, executable reproduction of Soo, Snodgrass & Jensen,
//! *Efficient Evaluation of the Valid-Time Natural Join* (ICDE 1994): the
//! temporal data model, a paged-storage simulator with random/sequential
//! I/O accounting, the paper's partition-based join algorithm and its
//! sort-merge and nested-loop competitors, the experiment workloads, and a
//! harness that regenerates every figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the member crates and hosts the
//! runnable examples and the cross-crate integration-test suite.
//!
//! ```
//! use vtjoin::prelude::*;
//!
//! // Two tiny valid-time relations…
//! let emp = Schema::new(vec![
//!     AttrDef::new("name", AttrType::Str),
//!     AttrDef::new("dept", AttrType::Str),
//! ]).unwrap().into_shared();
//! let mgr = Schema::new(vec![
//!     AttrDef::new("dept", AttrType::Str),
//!     AttrDef::new("mgr", AttrType::Str),
//! ]).unwrap().into_shared();
//! let r = Relation::new(emp, vec![
//!     Tuple::new(vec!["ed".into(), "ship".into()], Interval::from_raw(1, 10).unwrap()),
//! ]).unwrap();
//! let s = Relation::new(mgr, vec![
//!     Tuple::new(vec!["ship".into(), "ann".into()], Interval::from_raw(5, 20).unwrap()),
//! ]).unwrap();
//!
//! // …joined on disk with the paper's partition join.
//! let disk = SharedDisk::new(4096);
//! let hr = HeapFile::bulk_load(&disk, &r).unwrap();
//! let hs = HeapFile::bulk_load(&disk, &s).unwrap();
//! let report = PartitionJoin::default()
//!     .execute(&hr, &hs, &JoinConfig::with_buffer(16).collecting())
//!     .unwrap();
//! assert_eq!(report.result_tuples, 1);
//! let result = report.result.unwrap();
//! assert_eq!(result.tuples()[0].valid(), Interval::from_raw(5, 10).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use vtjoin_core as model;
pub use vtjoin_engine as engine;
pub use vtjoin_join as join;
pub use vtjoin_obs as obs;
pub use vtjoin_storage as storage;
pub use vtjoin_workload as workload;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use vtjoin_core::algebra::{coalesce, natural_join, predicate_join};
    pub use vtjoin_core::{
        AllenRelation, AttrDef, AttrType, Chronon, Interval, JoinPredicate, Period, Relation,
        Schema, Tuple, Value,
    };
    pub use vtjoin_engine::{Database, MaterializedVtJoin};
    pub use vtjoin_join::{
        execution_report, partition_execution_report, JoinAlgorithm, JoinConfig, JoinReport,
        NestedLoopJoin, PartitionJoin, SortMergeJoin,
    };
    pub use vtjoin_obs::ExecutionReport;
    pub use vtjoin_storage::{CostRatio, HeapFile, IoStats, SharedDisk};
    pub use vtjoin_workload::{GeneratorConfig, PaperParams};
}
