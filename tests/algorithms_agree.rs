//! Cross-algorithm correctness: every disk-based algorithm must produce
//! the same multiset as the in-memory reference join, across workload
//! shapes and buffer sizes.

use vtjoin::join::{ReplicatedPartitionJoin, TimeIndexJoin};
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;
use vtjoin::workload::generate::{
    generate, inner_schema, outer_schema, DurationDistribution, GeneratorConfig, KeyDistribution,
    TimeDistribution,
};

fn cfg(tuples: u64, long_lived: u64, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        tuples,
        long_lived,
        lifespan: 5_000,
        keys: 64,
        key_dist: KeyDistribution::Uniform,
        time_dist: TimeDistribution::Uniform,
        duration_dist: DurationDistribution::Instant,
        pad_bytes: 16,
        seed,
    }
}

fn all_algorithms() -> Vec<Box<dyn JoinAlgorithm>> {
    vec![
        Box::new(NestedLoopJoin),
        Box::new(SortMergeJoin),
        Box::new(PartitionJoin::default()),
        Box::new(PartitionJoin {
            sample_inner_for_cache: true,
            reserved_cache_pages: 0,
        }),
        Box::new(PartitionJoin {
            sample_inner_for_cache: false,
            reserved_cache_pages: 3,
        }),
        Box::new(ReplicatedPartitionJoin),
        Box::new(TimeIndexJoin::default()),
    ]
}

fn check(gen_r: &GeneratorConfig, gen_s: &GeneratorConfig, buffer: u64) {
    let r = generate(outer_schema(gen_r.pad_bytes), gen_r);
    let s = generate(inner_schema(gen_s.pad_bytes), gen_s);
    let expected = natural_join(&r, &s).unwrap();

    let disk = SharedDisk::new(512);
    let hr = HeapFile::bulk_load(&disk, &r).unwrap();
    let hs = HeapFile::bulk_load(&disk, &s).unwrap();
    let jc = JoinConfig::with_buffer(buffer).collecting();
    for algo in all_algorithms() {
        let report = algo.execute(&hr, &hs, &jc).unwrap();
        let got = report.result.as_ref().expect("collected");
        assert!(
            got.multiset_eq(&expected),
            "{} (buffer {buffer}): got {} want {} tuples, {} diff entries",
            algo.name(),
            got.len(),
            expected.len(),
            got.multiset_diff(&expected).len()
        );
        assert_eq!(report.result_tuples as usize, expected.len());
    }
}

#[test]
fn uniform_one_chronon_workload() {
    check(&cfg(600, 0, 1), &cfg(600, 0, 2), 24);
}

#[test]
fn long_lived_heavy_workload() {
    check(&cfg(600, 200, 3), &cfg(600, 200, 4), 24);
}

#[test]
fn asymmetric_sizes_and_distributions() {
    // Small outer vs large inner, with the inner long-lived only — the
    // §5 "distributions differ" caveat.
    check(&cfg(150, 0, 5), &cfg(900, 450, 6), 24);
    // Large outer vs small inner.
    check(&cfg(900, 100, 7), &cfg(150, 10, 8), 24);
}

#[test]
fn zipf_keys_and_clustered_time() {
    let mut a = cfg(500, 100, 9);
    a.key_dist = KeyDistribution::Zipf(1.1);
    let mut b = cfg(500, 50, 10);
    b.time_dist = TimeDistribution::Clustered(5);
    check(&a, &b, 24);
}

#[test]
fn tight_buffers_still_agree() {
    // Near the feasibility floor (overflow chunking, tiny windows).
    check(&cfg(400, 120, 11), &cfg(400, 120, 12), 14);
}

#[test]
fn generous_buffers_hit_degenerate_paths() {
    // Everything fits in memory: partition join takes the single-partition
    // shortcut, nested loop one chunk, sort a single run.
    check(&cfg(300, 60, 13), &cfg(300, 60, 14), 512);
}

#[test]
fn duplicate_tuples_preserve_multiplicity() {
    let base = cfg(80, 20, 15);
    let r0 = generate(outer_schema(16), &base);
    // Duplicate every tuple.
    let doubled: Vec<Tuple> = r0.iter().flat_map(|t| [t.clone(), t.clone()]).collect();
    let r = Relation::from_parts_unchecked(outer_schema(16), doubled);
    let s = generate(inner_schema(16), &cfg(200, 40, 16));
    let expected = natural_join(&r, &s).unwrap();

    let disk = SharedDisk::new(512);
    let hr = HeapFile::bulk_load(&disk, &r).unwrap();
    let hs = HeapFile::bulk_load(&disk, &s).unwrap();
    for algo in all_algorithms() {
        let report = algo
            .execute(&hr, &hs, &JoinConfig::with_buffer(20).collecting())
            .unwrap();
        assert!(
            report.result.as_ref().unwrap().multiset_eq(&expected),
            "{} broke duplicate multiplicity",
            algo.name()
        );
    }
}

#[test]
fn empty_relations_everywhere() {
    let disk = SharedDisk::new(512);
    let empty_r = HeapFile::bulk_load(&disk, &Relation::empty(outer_schema(16))).unwrap();
    let s = generate(inner_schema(16), &cfg(100, 10, 17));
    let hs = HeapFile::bulk_load(&disk, &s).unwrap();
    for algo in all_algorithms() {
        let report = algo
            .execute(&empty_r, &hs, &JoinConfig::with_buffer(16).collecting())
            .unwrap();
        assert_eq!(report.result_tuples, 0, "{}", algo.name());
        let report = algo
            .execute(&hs, &empty_r, &JoinConfig::with_buffer(16).collecting())
            .unwrap();
        assert_eq!(report.result_tuples, 0, "{} (swapped)", algo.name());
    }
}
