//! Proves the `BlockTable` probe path performs **zero per-tuple heap
//! allocations**: a counting global allocator measures the allocation
//! delta across a probe loop that produces no matches (key misses and
//! key-hits without temporal overlap). The old `HashMap<Vec<Value>, _>`
//! table allocated a key vector on *every* probe; the hash-bucket table
//! must allocate only when a genuine match splices a result tuple.
//!
//! This lives in its own integration-test binary so the global allocator
//! hook cannot interfere with any other test, and the single `#[test]`
//! keeps the process free of concurrent allocator traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vtjoin::join::common::{BlockTable, JoinSpec};
use vtjoin::prelude::*;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn schema(attr: &str) -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new(attr, AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

#[test]
fn probe_path_is_allocation_free() {
    let r_schema = schema("b");
    let s_schema = schema("c");
    let spec = JoinSpec::natural(&r_schema, &s_schema).unwrap();

    let block: Vec<Tuple> = (0..1000)
        .map(|i| {
            Tuple::new(
                vec![Value::Int(i % 64), Value::Int(i)],
                Interval::from_raw(0, 100).unwrap(),
            )
        })
        .collect();
    let table = BlockTable::build(&spec, &block);

    // Misses: keys outside the build side's [0, 64) range.
    let misses: Vec<Tuple> = (0..500)
        .map(|i| {
            Tuple::new(
                vec![Value::Int(1_000_000 + i), Value::Int(0)],
                Interval::from_raw(0, 100).unwrap(),
            )
        })
        .collect();
    // Key hits that fail the temporal predicate: hash-equal candidates are
    // walked, `try_match` rejects on overlap, nothing is spliced.
    let disjoint: Vec<Tuple> = (0..500)
        .map(|i| {
            Tuple::new(
                vec![Value::Int(i % 64), Value::Int(0)],
                Interval::from_raw(5_000, 5_001).unwrap(),
            )
        })
        .collect();

    let mut matched = 0u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for y in misses.iter().chain(&disjoint) {
        table.probe_each(y, |_| matched += 1);
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(matched, 0, "fixture must produce no matches");
    assert_eq!(
        delta, 0,
        "probe path allocated {delta} times over 1000 matchless probes"
    );

    // Sanity: the same table *does* find matches when they exist, and the
    // counters moved.
    let hit = Tuple::new(
        vec![Value::Int(3), Value::Int(0)],
        Interval::from_raw(50, 60).unwrap(),
    );
    table.probe_each(&hit, |_| matched += 1);
    assert!(matched > 0, "hit probe must match");
    let (probes, tests) = table.cpu_counters();
    assert_eq!(probes, 1001);
    assert!(tests > 0);
}
