//! Chaos suite: joins under injected storage faults.
//!
//! The acceptance property of the fault-injection layer: under any fault
//! rate, a join either returns a result multiset-equal to the in-memory
//! `natural_join` oracle or surfaces a typed [`JoinError`] — never a
//! panic, never a silently wrong or truncated result. Torn writes are the
//! sharpest case: the write reports success and the damage only surfaces
//! later as a page-checksum mismatch, which must still come back as a
//! typed error.
//!
//! Also covers the observability contract: runs with faults armed attach
//! a `faults` section to the execution report and that section survives
//! the JSON round trip exactly; clean runs attach nothing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use vtjoin::prelude::*;
use vtjoin::storage::{FaultConfig, RetryPolicy};
use vtjoin::workload::generate::{
    generate, inner_schema, outer_schema, DurationDistribution, GeneratorConfig, KeyDistribution,
    TimeDistribution,
};

fn workload(tuples: u64, long_lived: u64, seed: u64) -> (Relation, Relation) {
    let cfg = GeneratorConfig {
        tuples,
        long_lived,
        lifespan: 10_000,
        keys: (tuples / 10).max(1),
        key_dist: KeyDistribution::Uniform,
        time_dist: TimeDistribution::Uniform,
        duration_dist: DurationDistribution::UniformUpTo(40),
        pad_bytes: 8,
        seed,
    };
    let r = generate(outer_schema(cfg.pad_bytes), &cfg);
    let s = generate(
        inner_schema(cfg.pad_bytes),
        &cfg.clone().seed(seed ^ 0xabcd_ef01),
    );
    (r, s)
}

/// Loads the pair onto a fresh small-paged disk and arms the given fault
/// rate (reads, writes, and a quarter-rate of torn writes) after the load,
/// so the inputs themselves start intact.
fn faulty_disk(
    r: &Relation,
    s: &Relation,
    rate: u32,
    seed: u64,
    retry: RetryPolicy,
) -> (SharedDisk, HeapFile, HeapFile) {
    let disk = SharedDisk::new(512);
    let hr = HeapFile::bulk_load(&disk, r).unwrap();
    let hs = HeapFile::bulk_load(&disk, s).unwrap();
    if rate > 0 {
        disk.set_retry_policy(retry);
        disk.set_fault_config(Some(FaultConfig {
            seed,
            read_fail_permille: rate,
            write_fail_permille: rate,
            torn_write_permille: rate / 4,
        }));
    }
    (disk, hr, hs)
}

#[test]
fn sweep_is_oracle_exact_or_typed_error() {
    let mut exact = 0u64;
    let mut typed = 0u64;
    let mut degraded = 0u64;
    for long_lived in [0u64, 128] {
        let (r, s) = workload(800, long_lived, 7);
        let oracle = natural_join(&r, &s).unwrap();
        for fault_seed in [1u64, 2, 3] {
            for buffer in [16u64, 24, 40] {
                // Rates up to 5% (the acceptance ceiling); retry budget on.
                for rate in [5u32, 20, 50] {
                    let (_disk, hr, hs) =
                        faulty_disk(&r, &s, rate, fault_seed, RetryPolicy::default());
                    let cfg = JoinConfig::with_buffer(buffer).collecting();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        PartitionJoin::default().execute(&hr, &hs, &cfg)
                    }))
                    .unwrap_or_else(|_| {
                        panic!(
                            "join panicked at rate {rate}‰, seed {fault_seed}, \
                             buffer {buffer}, long_lived {long_lived}"
                        )
                    });
                    match outcome {
                        Ok(report) => {
                            let got = report.result.as_ref().unwrap();
                            assert!(
                                got.multiset_eq(&oracle),
                                "silent wrong result at rate {rate}‰, seed {fault_seed}, \
                                 buffer {buffer}: {} tuples, oracle {}",
                                got.len(),
                                oracle.len()
                            );
                            exact += 1;
                            if report.note("planner_degraded") == Some(1) {
                                degraded += 1;
                            }
                        }
                        Err(_) => typed += 1,
                    }
                }
            }
        }
    }
    // The sweep must actually exercise both sides of the invariant: with
    // retries on, most runs recover to the exact result, and high rates
    // force at least some typed errors overall.
    assert!(exact > 0, "no run survived to an exact result");
    assert!(
        exact + typed == 2 * 3 * 3 * 3,
        "accounting mismatch: {exact} exact + {typed} typed"
    );
    let _ = degraded; // degradation is opportunistic, not guaranteed per sweep
}

#[test]
fn no_retries_still_never_silently_wrong() {
    // With the retry budget off, the first injected fault surfaces; the
    // invariant must hold on the error path alone.
    let (r, s) = workload(600, 64, 11);
    let oracle = natural_join(&r, &s).unwrap();
    for fault_seed in [5u64, 6, 7, 8] {
        let (_disk, hr, hs) = faulty_disk(&r, &s, 30, fault_seed, RetryPolicy::NONE);
        let cfg = JoinConfig::with_buffer(24).collecting();
        match PartitionJoin::default().execute(&hr, &hs, &cfg) {
            Ok(report) => {
                assert!(report.result.as_ref().unwrap().multiset_eq(&oracle));
            }
            Err(e) => {
                // Typed error is acceptable; its Display must be non-empty
                // (it reaches CLI users verbatim).
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

#[test]
fn faults_section_attaches_and_round_trips_exactly() {
    let (r, s) = workload(800, 64, 13);
    // Transient faults only (no torn writes): with the default retry
    // budget, per-operation failure after four attempts is ~0.04⁴, so the
    // run completes while still guaranteeing fault-path activity.
    let disk = SharedDisk::new(512);
    let hr = HeapFile::bulk_load(&disk, &r).unwrap();
    let hs = HeapFile::bulk_load(&disk, &s).unwrap();
    disk.set_retry_policy(RetryPolicy::default());
    disk.set_fault_config(Some(FaultConfig {
        seed: 99,
        read_fail_permille: 40,
        write_fail_permille: 40,
        torn_write_permille: 0,
    }));
    let cfg = JoinConfig::with_buffer(32).collecting();
    // A few attempts hedge against retry exhaustion; this test is about
    // reporting, not the oracle (covered above).
    let mut report = None;
    for _ in 0..20 {
        if let Ok(rep) = PartitionJoin::default().execute(&hr, &hs, &cfg) {
            report = Some(rep);
            break;
        }
    }
    let report = report.expect("no run completed in 20 attempts at 4% transient faults");
    let summary = report.faults.expect("faults armed ⇒ summary attached");
    assert!(
        summary.stats.injected() > 0 || disk.fault_stats().injected() > 0,
        "a 4% rate over a full join must inject something"
    );

    let er = execution_report(&report, &cfg);
    let fs = er
        .faults
        .expect("execution report carries the faults section");
    assert_eq!(fs.injected_read_faults, summary.stats.injected_read_faults);
    assert_eq!(fs.retries, summary.stats.retries);
    assert_eq!(fs.recovered, summary.stats.recovered);

    let text = er.to_json_string();
    assert!(text.contains("\"faults\":"));
    let back = vtjoin::obs::ExecutionReport::from_json_str(&text).unwrap();
    assert_eq!(back, er, "faults JSON round trip must be lossless");
}

#[test]
fn clean_runs_attach_no_faults_section() {
    let (r, s) = workload(400, 0, 17);
    let (_disk, hr, hs) = faulty_disk(&r, &s, 0, 0, RetryPolicy::default());
    let cfg = JoinConfig::with_buffer(12).collecting();
    let report = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
    assert!(
        report.faults.is_none(),
        "fault-free runs must not change shape"
    );
    let er = execution_report(&report, &cfg);
    assert!(er.faults.is_none());
    assert!(!er.to_json_string().contains("\"faults\":"));
}

#[test]
fn torn_writes_surface_as_typed_corruption_not_panic() {
    // Certain torn writes, no read/write failures: every spilled page is
    // corrupted in place while the write itself reports success. Any later
    // read of such a page must fail the checksum as a typed error.
    let (r, s) = workload(800, 128, 19);
    let oracle = natural_join(&r, &s).unwrap();
    let cfg = JoinConfig::with_buffer(24).collecting();
    // The buffer must admit a clean run, so a faulty-run error below can
    // only come from the injected corruption.
    {
        let disk = SharedDisk::new(512);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let clean = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
        assert!(clean.result.as_ref().unwrap().multiset_eq(&oracle));
    }
    let disk = SharedDisk::new(512);
    let hr = HeapFile::bulk_load(&disk, &r).unwrap();
    let hs = HeapFile::bulk_load(&disk, &s).unwrap();
    disk.set_fault_config(Some(FaultConfig {
        seed: 23,
        read_fail_permille: 0,
        write_fail_permille: 0,
        torn_write_permille: 1000,
    }));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        PartitionJoin::default().execute(&hr, &hs, &cfg)
    }))
    .expect("torn writes must never panic");
    match outcome {
        Ok(report) => {
            // Possible only if the run never re-read a torn page.
            assert!(report.result.as_ref().unwrap().multiset_eq(&oracle));
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("checksum") || msg.contains("corrupt"),
                "torn write surfaced as unexpected error: {msg}"
            );
        }
    }
    assert!(
        disk.fault_stats().torn_writes > 0,
        "torn writes were injected"
    );
}
