//! Columnar ≡ row round-trip: the struct-of-arrays encode → columnar
//! kernel → late-materialization pipeline must reproduce the row path
//! **byte-identically** (same tuples, same order, same kernel counters)
//! across every grammar-nameable predicate and both executors — the grid
//! executor and the serial partition join. This is the pin for the
//! `ColumnarSide` contract in `crates/join/src/columnar.rs`.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::grid_execution_report_layout;
use vtjoin::join::common::JoinSpec;
use vtjoin::join::kernel::KernelChoice;
use vtjoin::join::partition::intervals::equal_width;
use vtjoin::join::partition::{plan_grid, GridChoice};
use vtjoin::join::Layout;
use vtjoin::prelude::*;
use vtjoin::storage::codec::encode;

const T_MAX: i64 = 120;

/// Every predicate the `--predicate` grammar can name: the natural
/// alias, all thirteen Allen relations, gap-bounded before/after, and a
/// sample of `-or-` unions covering the intersection, sequence, and
/// mixed templates.
const GRAMMAR_PREDICATES: &[&str] = &[
    "intersects",
    "before",
    "meets",
    "overlaps",
    "starts",
    "during",
    "finishes",
    "equals",
    "finished-by",
    "contains",
    "started-by",
    "overlapped-by",
    "met-by",
    "after",
    "before-within-7",
    "after-within-3",
    "overlaps-or-overlapped-by",
    "during-or-contains-or-equals",
    "before-or-after",
    "meets-or-met-by",
    "starts-or-during-or-finishes",
];

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Str),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Str),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

prop_compose! {
    /// String keys from a small pool (duplicate-heavy, exercising the key
    /// dictionary and hash tie-breaks) with clustered starts so radix
    /// passes see both constant and varying bytes, plus interval ties.
    fn arb_tuple(keys: i64)(k in 0..keys, v in 0..1000i64, a in 0..T_MAX, len in 0..40i64)
        -> (String, i64, Interval)
    {
        (format!("key{k}"), v, Interval::from_raw(a, (a + len).min(T_MAX + 40)).unwrap())
    }
}

fn arb_rel(schema: Arc<Schema>, keys: i64, n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(keys), 0..n).prop_map(move |ts| {
        Relation::from_parts_unchecked(
            Arc::clone(&schema),
            ts.into_iter()
                .map(|(k, v, iv)| Tuple::new(vec![Value::from(k), Value::Int(v)], iv))
                .collect(),
        )
    })
}

/// The ordered byte image of a result: every tuple's storage-codec
/// encoding, *in emission order* — byte-identical means identical bytes
/// in identical order, not just multiset equality.
fn ordered_encoding(rel: &Relation) -> Vec<Vec<u8>> {
    rel.iter().map(encode).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Grid executor: for every grammar predicate and forced kernel, the
    /// columnar layout reproduces the row layout's output bytes, output
    /// order, and kernel counters.
    #[test]
    fn grid_executor_row_and_columnar_agree(
        r in arb_rel(r_schema(), 4, 60),
        s in arb_rel(s_schema(), 4, 60),
        parts in 1u64..5,
        threads in 1usize..3,
    ) {
        let lifespan = Interval::from_raw(0, T_MAX + 40).unwrap();
        let intervals = equal_width(lifespan, parts);
        let spec = JoinSpec::natural(r.schema(), s.schema()).unwrap();
        let plan = plan_grid(&spec, &r, &s, &intervals, threads, GridChoice::Fixed(2)).plan;
        for pred_text in GRAMMAR_PREDICATES {
            let pred: JoinPredicate = pred_text.parse().unwrap();
            for choice in [KernelChoice::Auto, KernelChoice::Sweep, KernelChoice::Hash] {
                let (row, row_report) = grid_execution_report_layout(
                    &r, &s, &plan, threads, choice, &pred, Layout::Row,
                ).unwrap();
                let (col, col_report) = grid_execution_report_layout(
                    &r, &s, &plan, threads, choice, &pred, Layout::Columnar,
                ).unwrap();
                prop_assert_eq!(
                    ordered_encoding(&row),
                    ordered_encoding(&col),
                    "{pred_text} ({choice:?}): layouts diverged",
                );
                prop_assert_eq!(
                    row_report.kernel, col_report.kernel,
                    "{pred_text} ({choice:?}): kernel counters diverged",
                );
                // The columnar section accounts for every materialized row.
                if let Some(c) = col_report.columnar {
                    prop_assert_eq!(c.materialized_rows, col.len() as u64);
                }
            }
        }
    }

    /// Operator executor: for every non-inner member of the operator
    /// family (outer/semi/anti joins and temporal aggregation) and every
    /// grammar predicate, the columnar layout — key equality through the
    /// encoded key dictionary — reproduces the row layout byte-identically,
    /// with identical dangling/stitch counters.
    #[test]
    fn operator_executor_row_and_columnar_agree(
        r in arb_rel(r_schema(), 4, 60),
        s in arb_rel(s_schema(), 4, 60),
        parts in 1u64..5,
        threads in 1usize..3,
    ) {
        use vtjoin::engine::operator_join;
        use vtjoin::model::{AggFunc, Operator};

        let lifespan = Interval::from_raw(0, T_MAX + 40).unwrap();
        let intervals = equal_width(lifespan, parts);
        let ops = [
            Operator::Left,
            Operator::Full,
            Operator::Semi,
            Operator::Anti,
            Operator::Aggregate(AggFunc::Count),
            Operator::Aggregate(AggFunc::Sum("c".into())),
        ];
        for pred_text in GRAMMAR_PREDICATES {
            let pred: JoinPredicate = pred_text.parse().unwrap();
            for op in &ops {
                let (row, row_counters) = operator_join(
                    &r, &s, op, &pred, &intervals, 2, threads, Layout::Row,
                ).unwrap();
                let (col, col_counters) = operator_join(
                    &r, &s, op, &pred, &intervals, 2, threads, Layout::Columnar,
                ).unwrap();
                prop_assert_eq!(
                    ordered_encoding(&row),
                    ordered_encoding(&col),
                    "{} under {pred_text}: layouts diverged", op,
                );
                prop_assert_eq!(
                    row_counters, col_counters,
                    "{} under {pred_text}: operator counters diverged", op,
                );
            }
        }
    }

    /// Serial partition join: for every partitioning-eligible grammar
    /// predicate, the columnar intra-partition path (including the paged
    /// tuple-cache chunks) reproduces the row path byte-identically.
    #[test]
    fn partition_join_row_and_columnar_agree(
        r in arb_rel(r_schema(), 4, 60),
        s in arb_rel(s_schema(), 4, 60),
        buffer in 8u64..24,
    ) {
        let disk = SharedDisk::new(256);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        for pred_text in GRAMMAR_PREDICATES {
            let pred: JoinPredicate = pred_text.parse().unwrap();
            if !pred.partitioning_eligible() {
                continue; // served by the merge fallback, pinned above
            }
            let run = |layout: Layout| {
                let mut cfg = JoinConfig::with_buffer(buffer).collecting().layout(layout);
                cfg.predicate = pred;
                let report = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
                ordered_encoding(report.result.as_ref().unwrap())
            };
            prop_assert_eq!(
                run(Layout::Row),
                run(Layout::Columnar),
                "{pred_text}: partition-join layouts diverged",
            );
        }
    }
}
