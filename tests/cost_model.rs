//! Analytic cost models versus measured I/O.
//!
//! The nested-loop model must be *exact* (the paper computed nested loop
//! analytically; our executable version must reproduce the formula to the
//! I/O). The sort-merge and partition models are bounds used by the
//! engine's planner; they must bound correctly and track the trend.

use vtjoin::join::cost;
use vtjoin::prelude::*;
use vtjoin::workload::generate::{generate_heap, inner_schema, outer_schema, GeneratorConfig};

fn load_pair(tuples: u64, long_lived: u64) -> (SharedDisk, HeapFile, HeapFile) {
    let mut params = PaperParams::SMALL;
    params.relation_tuples = tuples;
    params.lifespan = 10_000;
    params.objects = 97;
    let disk = SharedDisk::new(params.page_size);
    let cfg = GeneratorConfig::paper(&params, 21).long_lived(long_lived);
    let hr = generate_heap(&disk, outer_schema(cfg.pad_bytes), &cfg).unwrap();
    // Guard page: keep the relations physically non-adjacent so a scan of
    // one can never accidentally chain into the other.
    let _gap = disk.alloc(1);
    let hs = generate_heap(&disk, inner_schema(cfg.pad_bytes), &cfg.clone().seed(22)).unwrap();
    (disk, hr, hs)
}

#[test]
fn nested_loop_measured_equals_analytic_exactly() {
    let (_, hr, hs) = load_pair(4096, 0); // 128 pages each
    for buffer in [3u64, 5, 16, 33, 64, 130, 200] {
        let report = NestedLoopJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(buffer))
            .unwrap();
        for ratio in [CostRatio::R2, CostRatio::R5, CostRatio::R10] {
            let analytic = cost::nested_loop_cost(hr.pages(), hs.pages(), buffer, ratio);
            assert_eq!(
                report.cost(ratio),
                analytic,
                "buffer {buffer}, ratio {ratio}: measured != analytic"
            );
        }
    }
}

#[test]
fn sort_merge_lower_bound_holds() {
    let (_, hr, hs) = load_pair(4096, 512);
    for buffer in [8u64, 32, 130] {
        let report = SortMergeJoin
            .execute(&hr, &hs, &JoinConfig::with_buffer(buffer))
            .unwrap();
        let bound =
            cost::sort_merge_cost_lower_bound(hr.pages(), hs.pages(), buffer, CostRatio::R5);
        let measured = report.cost(CostRatio::R5);
        // The bound ignores backing up and some merge seeks: it must not
        // exceed the measurement by more than a small slack, and the
        // measurement must not be wildly above it either (sanity band).
        assert!(
            bound <= measured + measured / 10 + 16,
            "buffer {buffer}: bound {bound} way above measured {measured}"
        );
        assert!(
            measured <= bound * 4,
            "buffer {buffer}: measured {measured} not tracked by bound {bound}"
        );
    }
}

#[test]
fn partition_lower_bound_holds() {
    let (_, hr, hs) = load_pair(4096, 512);
    for buffer in [24u64, 64, 140] {
        let report = PartitionJoin::default()
            .execute(&hr, &hs, &JoinConfig::with_buffer(buffer))
            .unwrap();
        let bound = cost::partition_cost_lower_bound(hr.pages(), hs.pages(), buffer, CostRatio::R5);
        let measured = report.cost(CostRatio::R5);
        assert!(
            measured <= bound * 4,
            "buffer {buffer}: measured {measured} not tracked by bound {bound}"
        );
        assert!(
            measured + measured / 2 + 64 >= bound,
            "buffer {buffer}: bound {bound} too far above measured {measured}"
        );
    }
}

#[test]
fn phase_io_partitions_total_io() {
    let (_, hr, hs) = load_pair(2048, 256);
    for algo in [
        Box::new(SortMergeJoin) as Box<dyn JoinAlgorithm>,
        Box::new(PartitionJoin::default()),
        Box::new(NestedLoopJoin),
    ] {
        let report = algo
            .execute(&hr, &hs, &JoinConfig::with_buffer(24))
            .unwrap();
        let sum = report
            .phases
            .iter()
            .fold(IoStats::ZERO, |acc, p| acc + p.io);
        assert_eq!(
            sum,
            report.io,
            "{}: phase sums must equal total",
            algo.name()
        );
    }
}

#[test]
fn measured_io_is_deterministic() {
    let (_, hr, hs) = load_pair(2048, 256);
    let cfg = JoinConfig::with_buffer(32).seed(5);
    let a = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
    let b = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
    assert_eq!(a.io, b.io, "same seed, same plan, same I/O");
    assert_eq!(a.result_tuples, b.result_tuples);
}

#[test]
fn cpu_counters_reflect_algorithm_structure() {
    // §5 future work: "we have ignored the cost of main-memory
    // operations" — our reports expose them. Nested loop tests every
    // key-colliding pair once per outer chunk; the partition join touches
    // each pair near its canonical partition only.
    let (_, hr, hs) = load_pair(4096, 512);
    let cfg = JoinConfig::with_buffer(64);
    let nl = NestedLoopJoin.execute(&hr, &hs, &cfg).unwrap();
    let pj = PartitionJoin::default().execute(&hr, &hs, &cfg).unwrap();
    let sm = SortMergeJoin.execute(&hr, &hs, &cfg).unwrap();
    for rep in [&nl, &pj, &sm] {
        assert!(rep.note("cpu_probes").unwrap() > 0, "{}", rep.algorithm);
        assert!(
            rep.note("cpu_match_tests").unwrap() > 0,
            "{}",
            rep.algorithm
        );
    }
    // At 64 buffer pages the 128-page outer needs ~3 chunks: nested loop
    // probes every inner tuple once per chunk, the partition join only
    // where tuples are co-present.
    assert!(
        nl.note("cpu_probes").unwrap() * 2 > 3 * pj.note("cpu_probes").unwrap(),
        "nl {:?} vs pj {:?}",
        nl.note("cpu_probes"),
        pj.note("cpu_probes")
    );
}

#[test]
fn pricing_is_linear_in_the_ratio() {
    let (_, hr, hs) = load_pair(1024, 128);
    let report = SortMergeJoin
        .execute(&hr, &hs, &JoinConfig::with_buffer(16))
        .unwrap();
    let r = report.io.random();
    let s = report.io.sequential();
    for ratio in [1u64, 2, 5, 10, 100] {
        assert_eq!(report.cost(CostRatio::new(ratio)), r * ratio + s);
    }
}
