//! Integration tests of the 2D (key × time) grid executor: for every
//! grid shape — 1×N (time-only), K×1 (key-only), K×N — and any thread
//! count, the scatter/gather execution must return **byte-identical**
//! output to the 1-thread run of the same plan and the same multiset as
//! the serial nested-loop oracle, across key-skew levels from uniform
//! down to a single hot key. The canonical-cell emission rule is pinned
//! separately on boundary-straddling intervals, where a tuple pair is
//! co-resident in several cells and must be emitted by exactly one.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::grid_partition_join;
use vtjoin::join::common::JoinSpec;
use vtjoin::join::partition::intervals::equal_width;
use vtjoin::join::partition::{plan_grid, GridChoice};
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;

const T_MAX: i64 = 120;

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn build_rel(schema: Arc<Schema>, raw: Vec<(i64, i64, i64, i64)>) -> Relation {
    let tuples = raw
        .into_iter()
        .map(|(k, v, start, len)| {
            Tuple::new(
                vec![Value::Int(k), Value::Int(v)],
                Interval::from_raw(start, (start + len).min(T_MAX + 60)).unwrap(),
            )
        })
        .collect();
    Relation::from_parts_unchecked(schema, tuples)
}

/// `keys = 1` is the fully-skewed degenerate case: every tuple shares one
/// hot key, so a K-bucket key axis puts the whole relation in one bucket
/// and the grid must still be correct (if useless for balance).
fn arb_raw(keys: i64, n: usize) -> impl Strategy<Value = Vec<(i64, i64, i64, i64)>> {
    proptest::collection::vec((0..keys, 0..1000i64, 0..T_MAX, 0..100i64), 0..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every shape × every thread count: multiset-equal to the serial
    /// oracle, byte-identical to the plan's own 1-thread run.
    #[test]
    fn grid_shapes_match_oracle_and_are_thread_invariant(
        raw_r in arb_raw(6, 40),
        raw_s in arb_raw(6, 40),
        n_parts in 1u64..7,
    ) {
        let r = build_rel(r_schema(), raw_r);
        let s = build_rel(s_schema(), raw_s);
        let want = natural_join(&r, &s).unwrap();
        let spec = JoinSpec::natural(r.schema(), s.schema()).unwrap();
        let intervals = equal_width(Interval::from_raw(0, T_MAX).unwrap(), n_parts);
        let one = equal_width(Interval::from_raw(0, T_MAX).unwrap(), 1);

        // (label, time intervals, forced shape): 1×N, K×1, K×N, and Auto.
        let shapes: [(&str, &[Interval], GridChoice); 4] = [
            ("1xN", &intervals, GridChoice::TimeOnly),
            ("Kx1", &one, GridChoice::Fixed(4)),
            ("KxN", &intervals, GridChoice::Fixed(4)),
            ("auto", &intervals, GridChoice::Auto),
        ];
        for (label, ivs, choice) in shapes {
            let plan = plan_grid(&spec, &r, &s, ivs, 4, choice).plan;
            let serial = grid_partition_join(&r, &s, &plan, 1).unwrap();
            prop_assert!(
                serial.multiset_eq(&want),
                "{label}: got {} tuples, oracle {}", serial.len(), want.len()
            );
            for threads in [2usize, 3, 8] {
                let got = grid_partition_join(&r, &s, &plan, threads).unwrap();
                prop_assert_eq!(
                    got.tuples(), serial.tuples(),
                    "{} not byte-identical at {} threads", label, threads
                );
            }
        }
    }

    /// The fully-skewed single-key workload through a K×N grid: one key
    /// bucket carries everything, the rest are empty, and the output must
    /// still match the oracle at every thread count.
    #[test]
    fn single_hot_key_grid_is_exact(
        raw_r in arb_raw(1, 30),
        raw_s in arb_raw(1, 30),
    ) {
        let r = build_rel(r_schema(), raw_r);
        let s = build_rel(s_schema(), raw_s);
        let want = natural_join(&r, &s).unwrap();
        let spec = JoinSpec::natural(r.schema(), s.schema()).unwrap();
        let intervals = equal_width(Interval::from_raw(0, T_MAX).unwrap(), 4);
        let plan = plan_grid(&spec, &r, &s, &intervals, 4, GridChoice::Fixed(8)).plan;
        let serial = grid_partition_join(&r, &s, &plan, 1).unwrap();
        prop_assert!(serial.multiset_eq(&want));
        let got = grid_partition_join(&r, &s, &plan, 8).unwrap();
        prop_assert_eq!(got.tuples(), serial.tuples());
    }
}

/// Canonical-cell pin: every pair overlaps every other pair across all
/// four time partitions (all intervals span the whole lifespan), so each
/// joining pair is co-resident in `4 × 1` cells of its key bucket and
/// would be emitted four times without the canonical-cell rule. The
/// oracle count is exactly |R_k|·|S_k| summed over keys — no duplicates.
#[test]
fn canonical_cell_rule_emits_each_pair_once() {
    let raw = |side: i64| {
        (0..24)
            .map(|i| (i % 6, side * 1000 + i, 0, T_MAX + 60))
            .collect::<Vec<_>>()
    };
    let r = build_rel(r_schema(), raw(1));
    let s = build_rel(s_schema(), raw(2));
    let spec = JoinSpec::natural(r.schema(), s.schema()).unwrap();
    let intervals = equal_width(Interval::from_raw(0, T_MAX).unwrap(), 4);
    let plan = plan_grid(&spec, &r, &s, &intervals, 4, GridChoice::Fixed(4)).plan;
    assert!(plan.key_buckets > 1, "pin needs a real key axis");

    // 6 keys × 4 tuples/side/key → 4·4 pairs per key → 96 results.
    let got = grid_partition_join(&r, &s, &plan, 4).unwrap();
    assert_eq!(got.len(), 96, "each co-resident pair must be emitted once");
    assert!(got.multiset_eq(&natural_join(&r, &s).unwrap()));
}
