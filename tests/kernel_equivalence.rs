//! Property-based kernel equivalence: the forward-sweep kernel, the
//! hash kernel, and the nested-loop oracle must agree on every workload
//! — across duplicate ratios (1 key shared by everything up to mostly
//! distinct keys) and grid-aligned intervals that make boundary-touching
//! and abutting-but-disjoint pairs common, the closed-interval semantics'
//! edge cases.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::parallel_partition_join_with;
use vtjoin::join::common::JoinSpec;
use vtjoin::join::kernel::{hash_join, sweep_join, KernelChoice, OutputBatch, SweepScratch};
use vtjoin::join::partition::intervals::equal_width;
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;

/// All generated intervals fall inside `[0, T_SPAN]`.
const T_SPAN: i64 = 140;

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

prop_compose! {
    /// Intervals on a 5-chronon grid: ends land exactly on other tuples'
    /// starts (boundary-touching, must match under closed intervals) or
    /// one short of them (abutting, must not).
    fn arb_grid_tuple(keys: i64)(k in 0..keys, v in 0..1000i64, cell in 0..24i64, len in 0..4i64)
        -> (i64, i64, Interval)
    {
        let start = cell * 5;
        let end = start + [0, 4, 5, 17][len as usize];
        (k, v, Interval::from_raw(start, end).unwrap())
    }
}

fn arb_rel(schema: Arc<Schema>, keys: i64, n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_grid_tuple(keys), 0..n).prop_map(move |ts| {
        Relation::from_parts_unchecked(
            Arc::clone(&schema),
            ts.into_iter()
                .map(|(k, v, iv)| Tuple::new(vec![Value::Int(k), Value::Int(v)], iv))
                .collect(),
        )
    })
}

/// Runs both kernels directly over the same borrowed sides and emit
/// window, returning `(hash result, sweep result)`.
fn run_both_kernels(r: &Relation, s: &Relation, emit_within: Interval) -> (Relation, Relation) {
    let spec = JoinSpec::natural(r.schema(), s.schema()).unwrap();
    let rr: Vec<&Tuple> = r.iter().collect();
    let ss: Vec<&Tuple> = s.iter().collect();
    let mut batch = OutputBatch::new();

    batch.begin(16);
    hash_join(&spec, &rr, &ss, emit_within, &mut batch);
    let hash = Relation::from_parts_unchecked(Arc::clone(spec.out_schema()), batch.take());

    let mut scratch = SweepScratch::default();
    batch.begin(16);
    sweep_join(&spec, &rr, &ss, emit_within, &mut scratch, &mut batch);
    let sweep = Relation::from_parts_unchecked(Arc::clone(spec.out_schema()), batch.take());
    (hash, sweep)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_each_other_and_the_oracle(
        keys in 1i64..6,
        r in arb_rel(r_schema(), 6, 50),
        s in arb_rel(s_schema(), 6, 50),
    ) {
        // Remap keys down to `keys` distinct values to sweep the
        // duplicate ratio without regenerating the relations' shape.
        let squash = |rel: &Relation, schema: Arc<Schema>| {
            Relation::from_parts_unchecked(
                schema,
                rel.iter()
                    .map(|t| {
                        let Value::Int(k) = t.value(0) else { unreachable!() };
                        Tuple::new(
                            vec![Value::Int(k % keys), t.value(1).clone()],
                            t.valid(),
                        )
                    })
                    .collect(),
            )
        };
        let r = squash(&r, r_schema());
        let s = squash(&s, s_schema());

        let expected = natural_join(&r, &s).unwrap();
        let (hash, sweep) = run_both_kernels(&r, &s, Interval::ALL);
        prop_assert!(hash.multiset_eq(&expected), "hash: got {} want {}", hash.len(), expected.len());
        prop_assert!(sweep.multiset_eq(&expected), "sweep: got {} want {}", sweep.len(), expected.len());
    }

    #[test]
    fn emit_windows_partition_the_result_identically(
        r in arb_rel(r_schema(), 3, 40),
        s in arb_rel(s_schema(), 3, 40),
        n_windows in 1u64..6,
    ) {
        // The canonical-partition rule: each matching pair's overlap ends
        // in exactly one window of a partitioning of time, so the union of
        // per-window kernel outputs over the *whole* relations must be the
        // full join — for both kernels. This is the replicated-partition
        // de-duplication contract the executor relies on.
        let windows = equal_width(Interval::from_raw(0, T_SPAN).unwrap(), n_windows);
        let spec = JoinSpec::natural(r.schema(), s.schema()).unwrap();
        let mut hash_all = Vec::new();
        let mut sweep_all = Vec::new();
        for w in &windows {
            let (h, sw) = run_both_kernels(&r, &s, *w);
            hash_all.extend(h.into_tuples());
            sweep_all.extend(sw.into_tuples());
        }
        let expected = natural_join(&r, &s).unwrap();
        let hash = Relation::from_parts_unchecked(Arc::clone(spec.out_schema()), hash_all);
        let sweep = Relation::from_parts_unchecked(Arc::clone(spec.out_schema()), sweep_all);
        prop_assert!(hash.multiset_eq(&expected), "hash windows: got {} want {}", hash.len(), expected.len());
        prop_assert!(sweep.multiset_eq(&expected), "sweep windows: got {} want {}", sweep.len(), expected.len());
    }

    #[test]
    fn forced_executor_kernels_agree_across_partitionings(
        r in arb_rel(r_schema(), 4, 45),
        s in arb_rel(s_schema(), 4, 45),
        n_parts in 1u64..7,
        threads in 1usize..4,
    ) {
        let intervals = equal_width(Interval::from_raw(0, T_SPAN).unwrap(), n_parts);
        let expected = natural_join(&r, &s).unwrap();
        for choice in [KernelChoice::Auto, KernelChoice::Hash, KernelChoice::Sweep] {
            let got = parallel_partition_join_with(&r, &s, &intervals, threads, choice).unwrap();
            prop_assert!(
                got.multiset_eq(&expected),
                "{}: got {} want {} ({} partitions, {} threads)",
                choice.as_str(), got.len(), expected.len(), n_parts, threads
            );
        }
    }
}

/// Directed closed-interval edge cases, outside proptest so the exact
/// boundary artifacts are pinned: `[0,5]` meets `[5,9]` (shared chronon —
/// a match with the degenerate overlap `[5,5]`), `[0,4]` meets `[5,9]`
/// (abutting — no match).
#[test]
fn boundary_touching_matches_and_abutting_does_not_in_both_kernels() {
    let r = Relation::from_parts_unchecked(
        r_schema(),
        vec![
            Tuple::new(
                vec![Value::Int(1), Value::Int(0)],
                Interval::from_raw(0, 5).unwrap(),
            ),
            Tuple::new(
                vec![Value::Int(2), Value::Int(1)],
                Interval::from_raw(0, 4).unwrap(),
            ),
        ],
    );
    let s = Relation::from_parts_unchecked(
        s_schema(),
        vec![
            Tuple::new(
                vec![Value::Int(1), Value::Int(9)],
                Interval::from_raw(5, 9).unwrap(),
            ),
            Tuple::new(
                vec![Value::Int(2), Value::Int(8)],
                Interval::from_raw(5, 9).unwrap(),
            ),
        ],
    );
    let (hash, sweep) = run_both_kernels(&r, &s, Interval::ALL);
    assert_eq!(hash.len(), 1);
    assert!(hash.multiset_eq(&sweep));
    assert_eq!(
        hash.tuples()[0].valid(),
        Interval::from_raw(5, 5).unwrap(),
        "shared chronon joins to the degenerate instant [5,5]"
    );
}
