//! The unified execution report, end to end.
//!
//! Two acceptance properties of the observability layer:
//!
//! * on a real partition join, the cost model's prediction for the phases
//!   it models (sampling + partition joining) matches the measured cost to
//!   within its own errorSize-derived tolerance;
//! * a report serialized with `--stats-json`'s format deserializes back to
//!   an equal `ExecutionReport` (exact round trip — the schema is all
//!   integers, strings, and booleans).

use vtjoin::prelude::*;
use vtjoin::workload::generate::{generate_heap, inner_schema, outer_schema, GeneratorConfig};

fn load_pair(tuples: u64, long_lived: u64) -> (SharedDisk, HeapFile, HeapFile) {
    let mut params = PaperParams::SMALL;
    params.relation_tuples = tuples;
    params.lifespan = 10_000;
    params.objects = 97;
    let disk = SharedDisk::new(params.page_size);
    let cfg = GeneratorConfig::paper(&params, 21).long_lived(long_lived);
    let hr = generate_heap(&disk, outer_schema(cfg.pad_bytes), &cfg).unwrap();
    let _gap = disk.alloc(1);
    let hs = generate_heap(&disk, inner_schema(cfg.pad_bytes), &cfg.clone().seed(22)).unwrap();
    (disk, hr, hs)
}

fn partition_report(tuples: u64, long_lived: u64, buffer: u64) -> vtjoin::obs::ExecutionReport {
    let (_, hr, hs) = load_pair(tuples, long_lived);
    let cfg = JoinConfig::with_buffer(buffer);
    let (report, planner) = PartitionJoin::default()
        .execute_with_plan(&hr, &hs, &cfg)
        .unwrap();
    partition_execution_report(&report, &cfg, &planner, hr.pages())
}

#[test]
fn predicted_io_within_error_size_tolerance() {
    // A memory-constrained run with long-lived tuples: the planner must
    // sample, estimate the tuple cache, and predict C_sample + C_join.
    for (tuples, long_lived, buffer) in [(4096, 0, 24), (4096, 512, 32), (8192, 1024, 48)] {
        let er = partition_report(tuples, long_lived, buffer);
        let plan = er.plan.as_ref().expect("constrained run must have a plan");
        assert!(plan.error_size > 0, "errorSize must be positive");
        let dev = er.deviation.expect("plan implies a deviation section");
        assert!(
            dev.within_tolerance,
            "({tuples}, {long_lived}, {buffer}): predicted {} vs actual {} \
             exceeds tolerance {} (error {:+}, {:+}%)",
            dev.predicted_cost, dev.actual_cost, dev.tolerance, dev.error, dev.error_percent
        );
        // The deviation section is consistent with the per-phase table.
        let modelled: u64 = ["plan", "join"]
            .iter()
            .map(|n| er.phase(n).unwrap().io.cost)
            .sum();
        assert_eq!(dev.actual_cost, modelled);
        assert_eq!(
            dev.predicted_cost,
            er.phase("plan").unwrap().predicted_cost.unwrap()
                + er.phase("join").unwrap().predicted_cost.unwrap()
        );
    }
}

#[test]
fn stats_json_round_trips_to_equal_report() {
    let er = partition_report(4096, 512, 32);
    assert!(er.plan.is_some() && er.deviation.is_some());
    let text = er.to_json_string();
    let back = vtjoin::obs::ExecutionReport::from_json_str(&text).unwrap();
    assert_eq!(back, er, "serialize → parse must be the identity");
    // Re-serializing the parsed report reproduces the bytes.
    assert_eq!(back.to_json_string(), text);
}

#[test]
fn every_algorithm_produces_a_well_formed_report() {
    let (_, hr, hs) = load_pair(2048, 128);
    let cfg = JoinConfig::with_buffer(24);
    for algo in [
        Box::new(NestedLoopJoin) as Box<dyn JoinAlgorithm>,
        Box::new(SortMergeJoin),
        Box::new(PartitionJoin::default()),
    ] {
        let report = algo.execute(&hr, &hs, &cfg).unwrap();
        let er = execution_report(&report, &cfg);
        assert_eq!(er.algorithm, algo.name());
        // Phase I/O partitions the total, in the report as in the source.
        let phase_total: u64 = er.phases.iter().map(|p| p.io.total_ios).sum();
        assert_eq!(phase_total, er.io.total_ios, "{}", algo.name());
        let back = vtjoin::obs::ExecutionReport::from_json_str(&er.to_json_string()).unwrap();
        assert_eq!(back, er, "{}", algo.name());
    }
}
