//! Operator-family equivalence: the production operator executor
//! (`vtjoin::engine::operator_join` — grid scatter, dangling-tracking
//! sweeps, boundary stitching, oracle-order materialization) must be
//! **byte-identical** to the nested-loop oracles of
//! `vtjoin::model::algebra` for every operator, every grammar-nameable
//! predicate, both layouts, and several thread and partition counts —
//! plus the algebraic invariant that semijoin and antijoin *partition*
//! every input interval.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::operator_join;
use vtjoin::join::partition::intervals::equal_width;
use vtjoin::join::Layout;
use vtjoin::model::algebra::{
    antijoin_pred, count_over_time, extremum_over_time, full_outerjoin_pred, outerjoin_pred,
    predicate_join, segments_to_relation, semijoin_pred, sum_over_time, Extremum, JoinSide,
};
use vtjoin::model::{AggFunc, Operator};
use vtjoin::prelude::*;
use vtjoin::storage::codec::encode;

const T_MAX: i64 = 120;

/// Every predicate the `--predicate` grammar can name (the same list the
/// columnar round-trip pins): intersection, sequence, and mixed
/// templates all included, so both the tracked sweep and its nested
/// fallback are exercised.
const GRAMMAR_PREDICATES: &[&str] = &[
    "intersects",
    "before",
    "meets",
    "overlaps",
    "starts",
    "during",
    "finishes",
    "equals",
    "finished-by",
    "contains",
    "started-by",
    "overlapped-by",
    "met-by",
    "after",
    "before-within-7",
    "after-within-3",
    "overlaps-or-overlapped-by",
    "during-or-contains-or-equals",
    "before-or-after",
    "meets-or-met-by",
    "starts-or-during-or-finishes",
];

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Str),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Str),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

prop_compose! {
    /// Duplicate-heavy string keys, clustered starts, interval ties, and
    /// a spread of durations — dangling windows arise from both missing
    /// keys and non-overlapping times.
    fn arb_tuple(keys: i64)(k in 0..keys, v in 0..1000i64, a in 0..T_MAX, len in 0..40i64)
        -> (String, i64, Interval)
    {
        (format!("key{k}"), v, Interval::from_raw(a, (a + len).min(T_MAX + 40)).unwrap())
    }
}

fn arb_rel(schema: Arc<Schema>, keys: i64, n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(keys), 0..n).prop_map(move |ts| {
        Relation::from_parts_unchecked(
            Arc::clone(&schema),
            ts.into_iter()
                .map(|(k, v, iv)| Tuple::new(vec![Value::from(k), Value::Int(v)], iv))
                .collect(),
        )
    })
}

/// The ordered byte image of a result: byte-identical means identical
/// storage-codec bytes in identical emission order.
fn ordered_encoding(rel: &Relation) -> Vec<Vec<u8>> {
    rel.iter().map(encode).collect()
}

/// Canonicalizes a piecewise-constant aggregate: merges adjacent
/// segments holding the same value, so two segment lists compare equal
/// iff they denote the same per-chronon function (`count_over_time`
/// keeps a boundary at every event position, and the semi ∪ anti union
/// has extra events where one tuple's matched window splits).
fn merged(
    mut segs: Vec<vtjoin::model::algebra::AggSegment>,
) -> Vec<vtjoin::model::algebra::AggSegment> {
    let mut out: Vec<vtjoin::model::algebra::AggSegment> = Vec::with_capacity(segs.len());
    for seg in segs.drain(..) {
        match out.last_mut() {
            Some(last)
                if last.value == seg.value
                    && last.interval.end().value().checked_add(1)
                        == Some(seg.interval.start().value()) =>
            {
                last.interval = Interval::new(last.interval.start(), seg.interval.end()).unwrap();
            }
            _ => out.push(seg),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every operator × every grammar predicate × both layouts × thread
    /// counts 1/2/4 × several partition counts: the production executor
    /// reproduces the algebra oracle byte-for-byte.
    #[test]
    fn operators_match_oracles_bytewise(
        r in arb_rel(r_schema(), 4, 50),
        s in arb_rel(s_schema(), 4, 50),
        parts in 1u64..5,
    ) {
        let lifespan = Interval::from_raw(0, T_MAX + 40).unwrap();
        let intervals = equal_width(lifespan, parts);
        for pred_text in GRAMMAR_PREDICATES {
            let pred: JoinPredicate = pred_text.parse().unwrap();
            let oracles: Vec<(Operator, Relation)> = vec![
                (Operator::Inner, predicate_join(&r, &s, &pred).unwrap()),
                (
                    Operator::Left,
                    outerjoin_pred(&r, &s, JoinSide::Left, &pred).unwrap(),
                ),
                (Operator::Full, full_outerjoin_pred(&r, &s, &pred).unwrap()),
                (Operator::Semi, semijoin_pred(&r, &s, &pred).unwrap()),
                (Operator::Anti, antijoin_pred(&r, &s, &pred).unwrap()),
            ];
            for (op, want) in &oracles {
                for threads in [1usize, 2, 4] {
                    for layout in [Layout::Row, Layout::Columnar] {
                        let (got, counters) = operator_join(
                            &r, &s, op, &pred, &intervals, 2, threads, layout,
                        ).unwrap();
                        prop_assert_eq!(
                            ordered_encoding(&got),
                            ordered_encoding(want),
                            "{} under {pred_text} (threads={threads}, {layout:?}, \
                             parts={parts}): diverged from the oracle",
                            op,
                        );
                        prop_assert_eq!(
                            counters.fallback_nested,
                            !pred.partitioning_eligible(),
                            "{} under {pred_text}: wrong execution path", op,
                        );
                    }
                }
            }
        }
    }

    /// `semijoin ∪ antijoin` partitions every input interval: their
    /// concatenation covers each outer tuple's valid time exactly once,
    /// so counting it over time reproduces `count_over_time(r)` exactly.
    #[test]
    fn semi_and_anti_partition_every_input_interval(
        r in arb_rel(r_schema(), 4, 50),
        s in arb_rel(s_schema(), 4, 50),
        parts in 1u64..5,
        threads in 1usize..5,
    ) {
        let lifespan = Interval::from_raw(0, T_MAX + 40).unwrap();
        let intervals = equal_width(lifespan, parts);
        for pred_text in ["intersects", "during", "before-within-7", "meets-or-met-by"] {
            let pred: JoinPredicate = pred_text.parse().unwrap();
            let (semi, _) = operator_join(
                &r, &s, &Operator::Semi, &pred, &intervals, 2, threads, Layout::Columnar,
            ).unwrap();
            let (anti, _) = operator_join(
                &r, &s, &Operator::Anti, &pred, &intervals, 2, threads, Layout::Columnar,
            ).unwrap();
            let union = Relation::from_parts_unchecked(
                Arc::clone(r.schema()),
                semi.iter().chain(anti.iter()).cloned().collect(),
            );
            // Disjoint + exhaustive ⇔ identical per-chronon multiplicity.
            prop_assert_eq!(
                merged(count_over_time(&union)),
                merged(count_over_time(&r)),
                "{pred_text}: semi ∪ anti does not partition the input",
            );
            // And the total covered mass matches tuple for tuple.
            let mass = |rel: &Relation| -> u128 {
                rel.iter().map(|t| t.valid().duration()).sum()
            };
            prop_assert_eq!(mass(&semi) + mass(&anti), mass(&r));
        }
    }

    /// Temporal aggregation over the production path (TimelineIndex
    /// checkpointed sweeps) equals the `algebra/aggregate.rs` oracle over
    /// the materialized join, and its output segments are already
    /// maximal: coalescing them is a no-op.
    #[test]
    fn aggregation_matches_oracle_and_is_coalesced(
        r in arb_rel(r_schema(), 4, 40),
        s in arb_rel(s_schema(), 4, 40),
        parts in 1u64..5,
        threads in 1usize..5,
    ) {
        let pred = JoinPredicate::intersects();
        let lifespan = Interval::from_raw(0, T_MAX + 40).unwrap();
        let intervals = equal_width(lifespan, parts);
        let joined = predicate_join(&r, &s, &pred).unwrap();
        let cases: Vec<(AggFunc, Relation)> = vec![
            (AggFunc::Count, segments_to_relation(&count_over_time(&joined))),
            (
                AggFunc::Sum("c".into()),
                segments_to_relation(&sum_over_time(&joined, "c").unwrap()),
            ),
            (
                AggFunc::Min("b".into()),
                segments_to_relation(&extremum_over_time(&joined, "b", Extremum::Min).unwrap()),
            ),
            (
                AggFunc::Max("c".into()),
                segments_to_relation(&extremum_over_time(&joined, "c", Extremum::Max).unwrap()),
            ),
        ];
        for (f, want) in &cases {
            let op = Operator::Aggregate(f.clone());
            let (got, counters) = operator_join(
                &r, &s, &op, &pred, &intervals, 2, threads, Layout::Row,
            ).unwrap();
            prop_assert_eq!(
                ordered_encoding(&got),
                ordered_encoding(want),
                "aggregate:{}: diverged from the aggregate.rs oracle", f,
            );
            prop_assert_eq!(counters.agg_segments, got.len() as u64);
            // Extremum oracles merge adjacent equal-value segments, so
            // their production mirror must hand back already-coalesced
            // output (count/sum keep every event boundary by contract).
            if matches!(f, AggFunc::Min(_) | AggFunc::Max(_)) {
                let coalesced = vtjoin::model::algebra::coalesce(&got);
                prop_assert_eq!(
                    got.len(),
                    coalesced.len(),
                    "aggregate:{}: output was not maximal", f,
                );
            }
        }
    }
}
