//! Fast, assertion-level versions of the paper's experimental claims —
//! the headline shapes of Figures 6, 7 and 8 at a reduced scale. The full
//! regeneration lives in `vtjoin-bench`; these tests keep the shapes under
//! CI.

use vtjoin::prelude::*;
use vtjoin::workload::generate::{generate_heap, inner_schema, outer_schema, GeneratorConfig};

/// 1/8-scale paper geometry: 32,768-tuple (1024-page, 4 MB) relations —
/// large enough that the paper's memory:relation regimes (1/32 … 1×) are
/// all reachable within Grace-partitioning feasibility.
fn params() -> PaperParams {
    let mut p = PaperParams::FULL;
    p.relation_tuples = 32_768;
    p.lifespan = 125_000;
    p.objects = 3_276;
    p
}

fn pair(long_lived: u64, seed: u64) -> (SharedDisk, HeapFile, HeapFile) {
    let p = params();
    let disk = SharedDisk::new(p.page_size);
    let cfg = GeneratorConfig::paper(&p, seed).long_lived(long_lived);
    let hr = generate_heap(&disk, outer_schema(cfg.pad_bytes), &cfg).unwrap();
    let hs = generate_heap(
        &disk,
        inner_schema(cfg.pad_bytes),
        &cfg.clone().seed(seed ^ 0xffff),
    )
    .unwrap();
    (disk, hr, hs)
}

fn run(algo: &dyn JoinAlgorithm, hr: &HeapFile, hs: &HeapFile, buffer: u64) -> u64 {
    algo.execute(
        hr,
        hs,
        &JoinConfig::with_buffer(buffer).ratio(CostRatio::R5),
    )
    .unwrap()
    .cost(CostRatio::R5)
}

// "8 MB" at this scale: relation/4.
const MID_BUFFER: u64 = 256;

#[test]
fn fig6_nested_loop_collapses_at_small_memory_but_wins_at_large() {
    let (_, hr, hs) = pair(0, 1);
    let small = 40; // relation is ~26× this
    let large = 1100; // outer fits
    let nl_small = run(&NestedLoopJoin, &hr, &hs, small);
    let pj_small = run(&PartitionJoin::default(), &hr, &hs, small);
    let nl_large = run(&NestedLoopJoin, &hr, &hs, large);
    let pj_large = run(&PartitionJoin::default(), &hr, &hs, large);
    // §4.2: "nested loops performs quite poorly at small memory
    // allocations" while the partition join "shows relatively good
    // performance at all memory sizes"…
    assert!(
        nl_small as f64 > 1.5 * pj_small as f64,
        "at small memory NL {nl_small} should far exceed PJ {pj_small}"
    );
    // …and "at large memory allocations the performance of nested-loops
    // is quite good" — when the outer relation fits outright, both NL and
    // the partition join's single-partition shortcut converge to two scans.
    assert!(
        nl_large <= pj_large,
        "NL must be at least as good when the outer fits: {nl_large} vs {pj_large}"
    );
    assert!(
        nl_large * 3 < nl_small,
        "NL at large memory must be far below its small-memory self"
    );
}

#[test]
fn fig6_partition_improves_with_memory() {
    let (_, hr, hs) = pair(0, 2);
    let costs: Vec<u64> = [64u64, 128, 256, 512]
        .iter()
        .map(|&m| run(&PartitionJoin::default(), &hr, &hs, m))
        .collect();
    assert!(
        costs.windows(2).all(|w| w[1] <= w[0] + w[0] / 10),
        "partition join should improve (or hold) with memory: {costs:?}"
    );
    assert!(*costs.last().unwrap() < costs[0], "{costs:?}");
}

#[test]
fn fig7_partition_beats_sort_merge_across_densities() {
    // §4.3's headline. At the extreme point — half the database long-lived,
    // where the *live* long-lived tuples alone exceed the outer buffer and
    // every partition structurally overflows — we only require parity
    // (the paper's simulation did not charge retained tuples against the
    // buffer; see EXPERIMENTS.md).
    for (i, ll) in [1024u64, 4096, 8192, 16_384].iter().enumerate() {
        let (_, hr, hs) = pair(*ll, 10 + i as u64);
        let pj = run(&PartitionJoin::default(), &hr, &hs, MID_BUFFER);
        let sm = run(&SortMergeJoin, &hr, &hs, MID_BUFFER);
        if *ll <= 8192 {
            assert!(pj < sm, "density {ll}: partition {pj} !< sort-merge {sm}");
        } else {
            assert!(
                pj as f64 <= sm as f64 * 1.15,
                "density {ll}: partition {pj} not within 15% of sort-merge {sm}"
            );
        }
    }
}

#[test]
fn fig7_nested_loop_is_flat_in_long_lived_density() {
    let (_, hr0, hs0) = pair(0, 20);
    let (_, hr1, hs1) = pair(16_384, 20);
    let a = run(&NestedLoopJoin, &hr0, &hs0, MID_BUFFER);
    let b = run(&NestedLoopJoin, &hr1, &hs1, MID_BUFFER);
    // Identical page counts → identical cost, regardless of intervals.
    assert_eq!(a, b, "nested loop must not care about time");
}

#[test]
fn fig7_partition_cost_rises_with_density_via_the_cache() {
    let low = pair(1024, 30);
    let high = pair(16_384, 31);
    let rep_low = PartitionJoin::default()
        .execute(&low.1, &low.2, &JoinConfig::with_buffer(MID_BUFFER))
        .unwrap();
    let rep_high = PartitionJoin::default()
        .execute(&high.1, &high.2, &JoinConfig::with_buffer(MID_BUFFER))
        .unwrap();
    assert!(
        rep_high.cost(CostRatio::R5) > rep_low.cost(CostRatio::R5),
        "density must cost something"
    );
    assert!(
        rep_high.note("cache_pages_written").unwrap()
            > rep_low.note("cache_pages_written").unwrap(),
        "…and the mechanism must be the tuple cache"
    );
}

#[test]
fn fig7_sort_merge_backs_up_under_long_lived_tuples() {
    let (_, hr0, hs0) = pair(0, 40);
    let (_, hr1, hs1) = pair(8192, 41);
    let rep0 = SortMergeJoin
        .execute(&hr0, &hs0, &JoinConfig::with_buffer(MID_BUFFER))
        .unwrap();
    let rep1 = SortMergeJoin
        .execute(&hr1, &hs1, &JoinConfig::with_buffer(MID_BUFFER))
        .unwrap();
    assert_eq!(rep0.note("backup_page_rereads"), Some(0));
    assert!(rep1.note("backup_page_rereads").unwrap() > 0);
    assert!(rep1.cost(CostRatio::R5) > rep0.cost(CostRatio::R5));
}

#[test]
fn fig8_curves_converge_at_large_memory() {
    // Cost spread across densities must shrink as memory grows.
    let densities = [4096u64, 8192, 16_384];
    let spread = |buffer: u64| {
        let costs: Vec<u64> = densities
            .iter()
            .enumerate()
            .map(|(i, &ll)| {
                let (_, hr, hs) = pair(ll, 50 + i as u64);
                run(&PartitionJoin::default(), &hr, &hs, buffer)
            })
            .collect();
        (*costs.iter().max().unwrap() - *costs.iter().min().unwrap()) as f64
            / *costs.iter().min().unwrap() as f64
    };
    let spread_small = spread(64);
    let spread_large = spread(1024);
    assert!(
        spread_large < spread_small,
        "relative spread must shrink with memory: small {spread_small:.2} vs large {spread_large:.2}"
    );
}

#[test]
fn replication_ablation_uses_more_storage_than_migration() {
    let (_, hr, hs) = pair(8192, 60);
    let rep = vtjoin::join::ReplicatedPartitionJoin
        .execute(&hr, &hs, &JoinConfig::with_buffer(MID_BUFFER))
        .unwrap();
    let replicated = rep.note("replicated_pages").unwrap();
    let base = rep.note("base_pages").unwrap();
    assert!(
        replicated > base + base / 4,
        "half-long-lived workload must replicate heavily: {replicated} vs {base}"
    );
}
