//! Integration tests of the work-stealing parallel partition executor:
//! thread-count invariance and oracle equality under adversarial inputs
//! (long-lived tuples ending exactly on partition boundaries — the
//! canonical-partition emission rule's edge), the worker-count contract,
//! and consistency of the skew/utilization accounting with wall-clock.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::{parallel_execution_report, parallel_partition_join_reported};
use vtjoin::join::partition::intervals::equal_width;
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;

const T_MAX: i64 = 120;

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

/// Builds a relation from raw `(key, payload, start, len, snap)` tuples.
/// When `snap` is set, the tuple's end is moved to the end chronon of the
/// partition containing it — an interval ending **exactly on a partition
/// boundary**, exercising the emission rule `p_i.contains(end)` at its
/// edge. Long `len`s make the tuples span several partitions.
fn build_rel(
    schema: Arc<Schema>,
    parts: &[Interval],
    raw: Vec<(i64, i64, i64, i64, bool)>,
) -> Relation {
    let tuples = raw
        .into_iter()
        .map(|(k, v, start, len, snap)| {
            let mut end = (start + len).min(T_MAX + 60);
            if snap {
                let idx = parts.partition_point(|p| p.start() <= Chronon::new(end)) - 1;
                let pe = parts[idx].end();
                if pe > Chronon::new(start) && pe < Chronon::MAX {
                    end = pe.value();
                }
            }
            Tuple::new(
                vec![Value::Int(k), Value::Int(v)],
                Interval::from_raw(start, end).unwrap(),
            )
        })
        .collect();
    Relation::from_parts_unchecked(schema, tuples)
}

fn arb_raw(n: usize) -> impl Strategy<Value = Vec<(i64, i64, i64, i64, bool)>> {
    proptest::collection::vec(
        (
            0..4i64,
            0..1000i64,
            0..T_MAX,
            0..100i64,
            proptest::strategy::AnyBool,
        ),
        0..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn thread_count_invariant_and_oracle_equal(
        raw_r in arb_raw(50),
        raw_s in arb_raw(50),
        n_parts in 2u64..9,
    ) {
        let parts = equal_width(Interval::from_raw(0, T_MAX).unwrap(), n_parts);
        let r = build_rel(r_schema(), &parts, raw_r);
        let s = build_rel(s_schema(), &parts, raw_s);
        let want = natural_join(&r, &s).unwrap();

        let (first, _) = parallel_partition_join_reported(&r, &s, &parts, 1).unwrap();
        prop_assert!(
            first.multiset_eq(&want),
            "1 thread: got {} want {}", first.len(), want.len()
        );
        for threads in [2usize, 3, 8] {
            let (got, workers) =
                parallel_partition_join_reported(&r, &s, &parts, threads).unwrap();
            // Deterministic: same tuples in the same order at any thread count.
            prop_assert_eq!(got.tuples(), first.tuples(), "threads = {}", threads);
            prop_assert_eq!(workers.len(), threads.min(parts.len()));
            prop_assert_eq!(
                workers.iter().map(|w| w.partitions).sum::<u64>(),
                parts.len() as u64
            );
        }
    }
}

#[test]
fn worker_count_contract_two_partitions_eight_threads() {
    let parts = equal_width(Interval::from_raw(0, T_MAX).unwrap(), 2);
    let raw = (0..40)
        .map(|i| (i % 3, i, (i * 7) % T_MAX, i % 50, i % 4 == 0))
        .collect();
    let r = build_rel(r_schema(), &parts, raw);
    let raw = (0..40)
        .map(|i| (i % 3, i, (i * 11) % T_MAX, i % 30, i % 5 == 0))
        .collect();
    let s = build_rel(s_schema(), &parts, raw);

    let (got, workers) = parallel_partition_join_reported(&r, &s, &parts, 8).unwrap();
    assert_eq!(workers.len(), 2, "min(threads, partitions) workers");
    assert_eq!(workers.iter().map(|w| w.partitions).sum::<u64>(), 2);
    assert!(got.multiset_eq(&natural_join(&r, &s).unwrap()));
}

#[test]
fn skew_and_utilization_sum_consistently_with_wall_clock() {
    let parts = equal_width(Interval::from_raw(0, T_MAX).unwrap(), 8);
    let raw = (0..600)
        .map(|i| (i % 5, i, (i * 13) % T_MAX, i % 80, false))
        .collect();
    let r = build_rel(r_schema(), &parts, raw);
    let raw = (0..600)
        .map(|i| (i % 5, i, (i * 17) % T_MAX, i % 60, false))
        .collect();
    let s = build_rel(s_schema(), &parts, raw);

    let (_, er) = parallel_execution_report(&r, &s, &parts, 3).unwrap();
    let sk = er.skew.expect("parallel report carries a skew section");

    // The skew section is an exact aggregate of the worker sections.
    assert_eq!(
        sk.busy_micros_total,
        er.workers.iter().map(|w| w.busy_micros).sum::<u64>()
    );
    assert_eq!(
        sk.busy_micros_max,
        er.workers.iter().map(|w| w.busy_micros).max().unwrap()
    );
    assert!(sk.est_cost_max <= sk.est_cost_total);
    assert!(sk.max_partition_share_percent <= 100);
    assert!(sk.utilization_percent <= 100);

    // Busy time nests inside wall time, per worker and in total: each
    // worker's busy window is a subset of its wall window (±1 µs rounding
    // per measured interval, 8 partitions max per worker).
    let wall_max = er.workers.iter().map(|w| w.wall_micros).max().unwrap();
    for w in &er.workers {
        assert!(
            w.busy_micros <= w.wall_micros + parts.len() as u64,
            "worker busy {} exceeds wall {}",
            w.busy_micros,
            w.wall_micros
        );
    }
    assert!(sk.busy_micros_total <= er.workers.len() as u64 * (wall_max + parts.len() as u64));

    // Worker wall-clock nests inside the join phase's wall-clock
    // (workers are spawned after the phase timer starts and joined before
    // it stops; allow µs truncation slack).
    let join_phase = er.phase("join").expect("join phase present");
    assert!(
        wall_max <= join_phase.wall_micros + 2,
        "worker wall {} exceeds join phase {}",
        wall_max,
        join_phase.wall_micros
    );
}
