//! Property-based Allen-predicate equivalence: every predicate the
//! `--predicate` grammar can name — all thirteen single relations, the
//! natural `intersects`, and composed forms (`meets-or-overlaps`,
//! gap-bounded `before-within-N`) — must produce the same result through
//! every executor as the predicate-parameterized nested-loop oracle
//! ([`vtjoin::model::algebra::predicate_join`]): the parallel executor
//! (filtered sweep/hash kernels for intersection templates, the
//! sort-merge fallback for sequence/mixed) and the cost-based disk
//! planner. A second suite pins [`AllenRelation::classify`] against each
//! compiled predicate template on boundary-adjacent intervals — gap 0/1,
//! shared endpoints, zero-length chronon intervals — the closed
//! discrete-timeline edge cases where `meets` (`end + 1 == start`) and
//! `overlaps` are one chronon apart.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::parallel_partition_join_pred;
use vtjoin::engine::planner::run_join;
use vtjoin::join::partition::intervals::equal_width;
use vtjoin::model::PredicateTemplate;
use vtjoin::prelude::*;

/// All generated intervals fall inside `[0, T_SPAN]`.
const T_SPAN: i64 = 140;

/// The predicate axis: the thirteen single Allen relations, the natural
/// join, and two compositions (one mixed-template, one gap-bounded
/// sequence) — the full family the acceptance bar names.
fn grid_predicates() -> Vec<JoinPredicate> {
    let mut ps: Vec<JoinPredicate> = AllenRelation::ALL
        .iter()
        .map(|r| JoinPredicate::relation(*r))
        .collect();
    for s in ["intersects", "meets-or-overlaps", "before-within-7"] {
        ps.push(s.parse().unwrap());
    }
    ps
}

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

prop_compose! {
    /// Intervals on a 5-chronon grid with lengths chosen so endpoint
    /// coincidences (starts/finishes/equals), one-chronon adjacency
    /// (meets), and instants (zero-length) are all common.
    fn arb_grid_tuple(keys: i64)(k in 0..keys, v in 0..1000i64, cell in 0..24i64, len in 0..5i64)
        -> (i64, i64, Interval)
    {
        let start = cell * 5;
        let end = start + [0, 1, 4, 5, 17][len as usize];
        (k, v, Interval::from_raw(start, end).unwrap())
    }
}

fn arb_rel(schema: Arc<Schema>, keys: i64, n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_grid_tuple(keys), 1..n).prop_map(move |ts| {
        Relation::from_parts_unchecked(
            Arc::clone(&schema),
            ts.into_iter()
                .map(|(k, v, iv)| Tuple::new(vec![Value::Int(k), Value::Int(v)], iv))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The parallel executor — filtered kernels for intersection-template
    /// predicates, the chunked sort-merge fallback for sequence/mixed —
    /// agrees with the oracle for **every** predicate in the family, at
    /// every partitioning and thread count.
    #[test]
    fn parallel_executor_matches_the_oracle_for_every_predicate(
        r in arb_rel(r_schema(), 4, 30),
        s in arb_rel(s_schema(), 4, 30),
        n_parts in 1u64..6,
        threads in 1usize..4,
    ) {
        let intervals = equal_width(Interval::from_raw(0, T_SPAN).unwrap(), n_parts);
        for pred in grid_predicates() {
            let expected = predicate_join(&r, &s, &pred).unwrap();
            let got = parallel_partition_join_pred(&r, &s, &intervals, threads, &pred).unwrap();
            prop_assert!(
                got.multiset_eq(&expected),
                "{pred}: got {} want {} ({n_parts} partitions, {threads} threads)",
                got.len(), expected.len()
            );
        }
    }

    /// The cost-based disk planner routes each predicate to a capable
    /// algorithm (nested loop always; the partition join only for
    /// intersection templates) and the chosen algorithm's result matches
    /// the oracle.
    #[test]
    fn disk_planner_matches_the_oracle_for_every_predicate(
        r in arb_rel(r_schema(), 3, 20),
        s in arb_rel(s_schema(), 3, 20),
        buffer in 8u64..32,
    ) {
        let mut db = Database::new(4096);
        db.create_table("r", &r).unwrap();
        db.create_table("s", &s).unwrap();
        for pred in grid_predicates() {
            let cfg = JoinConfig::with_buffer(buffer).collecting().predicate(pred);
            let (algo, report) = run_join(&db, "r", "s", &cfg).unwrap();
            let expected = predicate_join(&r, &s, &pred).unwrap();
            let got = report.result.as_ref().unwrap();
            prop_assert!(
                got.multiset_eq(&expected),
                "{pred} via {}: got {} want {}",
                algo.name(), got.len(), expected.len()
            );
            // Sequence/mixed templates must never reach a partitioned plan.
            if !pred.partitioning_eligible() {
                prop_assert_eq!(algo.name(), "nested-loop", "{}", pred);
            }
        }
    }
}

prop_compose! {
    /// Boundary-adjacent interval pairs: `b`'s start is offset from `a`'s
    /// start by at most a few chronons on either side, and both lengths
    /// range over {0, 1, 4} — so gap-0 adjacency (`meets`), gap 1, shared
    /// start/end points, and zero-length instants occur constantly.
    fn arb_boundary_pair()(
        a_start in 5i64..20,
        a_len in 0..3i64,
        off in -4i64..10,
        b_len in 0..3i64,
    ) -> (Interval, Interval) {
        let lens = [0i64, 1, 4];
        let a = Interval::from_raw(a_start, a_start + lens[a_len as usize]).unwrap();
        let b_start = a_start + off;
        let b = Interval::from_raw(b_start, b_start + lens[b_len as usize]).unwrap();
        (a, b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// [`AllenRelation::classify`] and the compiled predicate templates
    /// agree on boundary-adjacent pairs: each pair satisfies exactly one
    /// single-relation predicate (the classified one), every
    /// intersection-template match shares a chronon, every
    /// sequence-template match is disjoint, and compositions match
    /// exactly the union of their members (with the gap bound applied to
    /// `before`/`after` only).
    #[test]
    fn classify_agrees_with_compiled_templates_on_boundaries(
        pair in arb_boundary_pair(),
    ) {
        let (a, b) = pair;
        let classified = AllenRelation::classify(a, b);
        let mut matched = 0;
        for rel in AllenRelation::ALL {
            let p = JoinPredicate::relation(rel);
            let m = p.matches(a, b);
            prop_assert_eq!(m, classified == rel, "{} on {} vs {}", rel, a, b);
            if m {
                matched += 1;
                match p.template() {
                    PredicateTemplate::Intersection => prop_assert!(
                        a.overlaps(b),
                        "{} compiled to intersection but {} ∩ {} = ∅", rel, a, b
                    ),
                    PredicateTemplate::Sequence => prop_assert!(
                        !a.overlaps(b),
                        "{} compiled to sequence but {} overlaps {}", rel, a, b
                    ),
                    PredicateTemplate::Mixed => unreachable!("single relation is never mixed"),
                }
            }
        }
        prop_assert_eq!(matched, 1, "exactly one relation classifies {} vs {}", a, b);

        // The natural predicate is exactly the overlap test.
        prop_assert_eq!(JoinPredicate::intersects().matches(a, b), a.overlaps(b));

        // Compositions are the union of their members…
        let om: JoinPredicate = "meets-or-overlaps".parse().unwrap();
        prop_assert_eq!(
            om.matches(a, b),
            matches!(classified, AllenRelation::Meets | AllenRelation::Overlaps)
        );
        // …and a gap bound prunes `before` matches without ever adding
        // any: gap 0 is `meets`, so `before-within-0` matches nothing.
        let within1: JoinPredicate = "before-within-1".parse().unwrap();
        if within1.matches(a, b) {
            prop_assert_eq!(classified, AllenRelation::Before);
            prop_assert!(JoinPredicate::relation(AllenRelation::Before).matches(a, b));
        }
        let within0: JoinPredicate = "before-within-0".parse().unwrap();
        prop_assert!(!within0.matches(a, b), "gap-0 adjacency is meets, not before");
    }
}

/// Directed zero-length (instant) pins, outside proptest so the exact
/// chronon arithmetic of the closed discrete timeline is on record:
/// `[5,5]` equals `[5,5]`, meets `[6,6]` (end + 1 == start), and is
/// before `[7,7]` with gap exactly 1.
#[test]
fn instant_intervals_classify_on_the_discrete_timeline() {
    let at = |p: i64| Interval::from_raw(p, p).unwrap();
    assert_eq!(AllenRelation::classify(at(5), at(5)), AllenRelation::Equals);
    assert_eq!(AllenRelation::classify(at(5), at(6)), AllenRelation::Meets);
    assert_eq!(AllenRelation::classify(at(5), at(7)), AllenRelation::Before);
    assert_eq!(AllenRelation::classify(at(7), at(5)), AllenRelation::After);
    let within1: JoinPredicate = "before-within-1".parse().unwrap();
    assert!(within1.matches(at(5), at(7)), "gap 1 admitted");
    assert!(!within1.matches(at(5), at(8)), "gap 2 pruned");
}
