//! Property-based cross-crate tests: arbitrary relations through the whole
//! stack — disk round-trips, every join algorithm against the oracle,
//! snapshot commutativity through the disk path, and incremental views.

use proptest::prelude::*;
use std::sync::Arc;
use vtjoin::engine::MaterializedVtJoin;
use vtjoin::join::partition::intervals::{choose_intervals, is_partitioning};
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;

const T_MAX: i64 = 120;

fn r_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("b", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

fn s_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttrDef::new("k", AttrType::Int),
        AttrDef::new("c", AttrType::Int),
    ])
    .unwrap()
    .into_shared()
}

prop_compose! {
    fn arb_tuple(keys: i64)(k in 0..keys, v in 0..1000i64, a in 0..T_MAX, len in 0..40i64)
        -> (i64, i64, Interval)
    {
        (k, v, Interval::from_raw(a, (a + len).min(T_MAX + 40)).unwrap())
    }
}

fn arb_rel(schema: Arc<Schema>, keys: i64, n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(keys), 0..n).prop_map(move |ts| {
        Relation::from_parts_unchecked(
            Arc::clone(&schema),
            ts.into_iter()
                .map(|(k, v, iv)| Tuple::new(vec![Value::Int(k), Value::Int(v)], iv))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heap_round_trip_preserves_relations(r in arb_rel(r_schema(), 5, 60)) {
        let disk = SharedDisk::new(256);
        let heap = HeapFile::bulk_load(&disk, &r).unwrap();
        let back = heap.read_all().unwrap();
        prop_assert_eq!(back.tuples(), r.tuples());
    }

    #[test]
    fn every_algorithm_matches_the_oracle(
        r in arb_rel(r_schema(), 4, 60),
        s in arb_rel(s_schema(), 4, 60),
        buffer in 12u64..40,
    ) {
        let expected = natural_join(&r, &s).unwrap();
        let disk = SharedDisk::new(256);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let cfg = JoinConfig::with_buffer(buffer).collecting();
        let algos: Vec<Box<dyn JoinAlgorithm>> = vec![
            Box::new(NestedLoopJoin),
            Box::new(SortMergeJoin),
            Box::new(PartitionJoin::default()),
            Box::new(vtjoin::join::ReplicatedPartitionJoin),
        ];
        for algo in algos {
            let report = algo.execute(&hr, &hs, &cfg).unwrap();
            let got = report.result.as_ref().unwrap();
            prop_assert!(
                got.multiset_eq(&expected),
                "{}: got {} want {}",
                algo.name(),
                got.len(),
                expected.len()
            );
        }
    }

    #[test]
    fn snapshot_commutativity_through_the_disk_path(
        r in arb_rel(r_schema(), 3, 40),
        s in arb_rel(s_schema(), 3, 40),
        t in 0..T_MAX,
    ) {
        // τ_t(partition-join(r, s)) == τ_t(r) ⋈ τ_t(s)
        let disk = SharedDisk::new(256);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let report = PartitionJoin::default()
            .execute(&hr, &hs, &JoinConfig::with_buffer(16).collecting())
            .unwrap();
        let c = Chronon::new(t);
        let lhs = report.result.unwrap().timeslice(c);
        let rhs = natural_join(&r.timeslice(c), &s.timeslice(c)).unwrap();
        prop_assert!(lhs.multiset_eq(&rhs));
    }

    #[test]
    fn chosen_intervals_always_partition_time(
        ivs in proptest::collection::vec(
            (0..500i64, 0..200i64).prop_map(|(a, l)| Interval::from_raw(a, a + l).unwrap()),
            0..50,
        ),
        n in 1u64..20,
    ) {
        let parts = choose_intervals(&ivs, n);
        prop_assert!(is_partitioning(&parts));
        prop_assert!(parts.len() as u64 <= n.max(1));
    }

    #[test]
    fn incremental_view_equals_recomputation(
        r in arb_rel(r_schema(), 3, 25),
        s in arb_rel(s_schema(), 3, 25),
        extra_r in proptest::collection::vec(arb_tuple(3), 0..8),
        extra_s in proptest::collection::vec(arb_tuple(3), 0..8),
        n_parts in 1u64..6,
    ) {
        let parts = choose_intervals(
            &r.iter().map(|t| t.valid()).collect::<Vec<_>>(),
            n_parts,
        );
        let mut view = MaterializedVtJoin::create(&r, &s, parts).unwrap();
        let extra_r: Vec<Tuple> = extra_r
            .into_iter()
            .map(|(k, v, iv)| Tuple::new(vec![Value::Int(k), Value::Int(v)], iv))
            .collect();
        let extra_s: Vec<Tuple> = extra_s
            .into_iter()
            .map(|(k, v, iv)| Tuple::new(vec![Value::Int(k), Value::Int(v)], iv))
            .collect();
        view.insert_outer(extra_r.clone());
        view.insert_inner(extra_s.clone());

        let mut r_all = r.tuples().to_vec();
        r_all.extend(extra_r);
        let mut s_all = s.tuples().to_vec();
        s_all.extend(extra_s);
        let expected = natural_join(
            &Relation::from_parts_unchecked(r_schema(), r_all),
            &Relation::from_parts_unchecked(s_schema(), s_all),
        )
        .unwrap();
        prop_assert!(view.result().multiset_eq(&expected));
    }

    #[test]
    fn join_cost_never_below_two_scans(
        r in arb_rel(r_schema(), 4, 80),
        s in arb_rel(s_schema(), 4, 80),
    ) {
        // Information-theoretic floor: every algorithm must at least read
        // both relations once.
        prop_assume!(!r.is_empty() && !s.is_empty());
        let disk = SharedDisk::new(256);
        let hr = HeapFile::bulk_load(&disk, &r).unwrap();
        let hs = HeapFile::bulk_load(&disk, &s).unwrap();
        let floor = hr.pages() + hs.pages();
        for algo in [
            Box::new(NestedLoopJoin) as Box<dyn JoinAlgorithm>,
            Box::new(SortMergeJoin),
            Box::new(PartitionJoin::default()),
        ] {
            let report = algo.execute(&hr, &hs, &JoinConfig::with_buffer(16)).unwrap();
            prop_assert!(
                report.io.total_ios() >= floor,
                "{} read less than the input: {} < {floor}",
                algo.name(),
                report.io.total_ios()
            );
        }
    }
}
