//! Concurrency + plan-cache correctness of the multi-query join service.
//!
//! * many submitter threads issuing overlapping join requests must each
//!   receive a result byte-identical to the serial in-memory oracle;
//! * a repeated identical workload (sequential, so the hit/miss split is
//!   deterministic) must report exactly one plan-cache miss and identical
//!   output on every hit;
//! * statistics drift past the `errorSize`-derived tolerance must force a
//!   replan, with hit/miss/invalidation counters asserted exactly under
//!   the fixed seed; a version bump with *unchanged* statistics (an empty
//!   append) must stay a hit through the drift check.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;
use vtjoin::engine::{
    Database, JoinService, PlanOutcome, Priority, Rejected, ServiceConfig, ServiceError,
    SubmitOptions,
};
use vtjoin::model::algebra::natural_join;
use vtjoin::prelude::*;
use vtjoin::workload::generate::{
    generate, inner_schema, outer_schema, DurationDistribution, GeneratorConfig, KeyDistribution,
    TimeDistribution,
};

fn workload(tuples: u64, seed: u64, outer: bool) -> Relation {
    let g = GeneratorConfig {
        tuples,
        long_lived: tuples / 20,
        lifespan: 20_000,
        keys: 128,
        key_dist: KeyDistribution::Uniform,
        time_dist: TimeDistribution::Uniform,
        duration_dist: DurationDistribution::UniformUpTo(300),
        pad_bytes: 0,
        seed,
    };
    let schema = if outer {
        outer_schema(0)
    } else {
        inner_schema(0)
    };
    generate(schema, &g)
}

/// The order-independent byte image acceptance compares on.
fn sorted_encoding(rel: &Relation) -> Vec<Vec<u8>> {
    let mut bytes: Vec<Vec<u8>> = rel.iter().map(vtjoin::storage::codec::encode).collect();
    bytes.sort_unstable();
    bytes
}

fn service_with(pairs: &[(&str, u64, bool)]) -> JoinService {
    let mut db = Database::new(1024);
    for (name, tuples, outer) in pairs {
        let seed = 0x5EED ^ (*tuples << 1) ^ u64::from(*outer);
        db.create_table(name, &workload(*tuples, seed, *outer))
            .unwrap();
    }
    let mut cfg = ServiceConfig::new(JoinConfig::with_buffer(16).seed(7), 16_384);
    cfg.threads_per_query = 2;
    JoinService::new(db, cfg)
}

#[test]
fn concurrent_overlapping_joins_match_the_serial_oracle() {
    let svc = service_with(&[
        ("r1", 2_000, true),
        ("s1", 2_000, false),
        ("r2", 1_200, true),
        ("s2", 1_500, false),
    ]);
    // Every distinct pair's oracle, computed serially up front.
    let oracle = |o: &str, i: &str| {
        let db = svc.database().read().unwrap();
        let (r, s) = (db.scan(o).unwrap(), db.scan(i).unwrap());
        sorted_encoding(&natural_join(&r, &s).unwrap())
    };
    let jobs = [("r1", "s1"), ("r2", "s2"), ("r1", "s2"), ("r2", "s1")];
    let oracles: Vec<_> = jobs.iter().map(|(o, i)| oracle(o, i)).collect();

    // 8 submitter threads draining a 32-request queue that cycles through
    // the four overlapping pairs.
    let next = AtomicUsize::new(0);
    let total = 32;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut checked = 0;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break checked;
                        }
                        let (o, inn) = jobs[i % jobs.len()];
                        let resp = svc.submit(o, inn).unwrap();
                        assert_eq!(
                            sorted_encoding(&resp.result),
                            oracles[i % jobs.len()],
                            "{o} ⋈ {inn} diverged from the oracle under concurrency"
                        );
                        checked += 1;
                    }
                })
            })
            .collect();
        let checked: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(checked, total);
    });

    let sec = svc.service_section();
    assert_eq!(sec.requests, total as u64);
    assert_eq!(sec.completed, total as u64);
    assert_eq!(sec.failed + sec.rejected, 0);
    // Hit/miss split is scheduling-dependent, but totals must balance and
    // at least the steady state (every pair planned once) must hit.
    assert_eq!(sec.cache_hits + sec.cache_misses, total as u64);
    assert!(sec.cache_hits >= (total - 2 * jobs.len()) as u64);
}

/// Satellite pin: admission charges both input relations *and* the
/// configured join buffer — the pages the kernels actually consume — not
/// just the inputs.
#[test]
fn reserved_pages_charge_inputs_plus_join_buffer() {
    let svc = service_with(&[("r", 2_000, true), ("s", 2_000, false)]);
    let (r_pages, s_pages) = {
        let db = svc.database().read().unwrap();
        (
            db.table_stats("r").unwrap().pages,
            db.table_stats("s").unwrap().pages,
        )
    };
    let resp = svc.submit("r", "s").unwrap();
    // service_with configures JoinConfig::with_buffer(16).
    assert_eq!(resp.reserved_pages, r_pages + s_pages + 16);
}

/// Streaming delivers the same bytes as materialized execution: the
/// concatenated batches are the response, in deterministic order.
#[test]
fn streamed_submission_concatenates_to_the_materialized_result() {
    let svc = service_with(&[("r", 2_000, true), ("s", 2_000, false)]);
    let materialized = svc.submit("r", "s").unwrap();
    let mut streamed_tuples = Vec::new();
    let mut sink = |batch: Vec<Tuple>| streamed_tuples.extend(batch);
    let resp = svc
        .submit_streamed(
            "r",
            "s",
            &JoinPredicate::intersects(),
            &SubmitOptions::default(),
            &mut sink,
        )
        .unwrap();
    assert_eq!(resp.tuples as usize, streamed_tuples.len());
    assert_eq!(materialized.result.tuples(), &streamed_tuples[..]);
}

/// Typed shedding outcomes: a held pool sheds background requests with
/// `RetryAfter` (positive hint) and deadline-carrying requests with
/// `DeadlineExceeded`, never an untyped failure.
#[test]
fn saturated_pool_sheds_with_typed_outcomes() {
    let svc = service_with(&[("r", 1_200, true), ("s", 1_200, false)]);
    let hold = svc.reserve_maintenance(16_384).expect("idle pool");

    let bg = SubmitOptions {
        priority: Priority::Background,
        ..SubmitOptions::default()
    };
    match svc.submit_opts("r", "s", &JoinPredicate::intersects(), &bg) {
        Err(ServiceError::Rejected(Rejected::RetryAfter { millis })) => assert!(millis >= 1),
        other => panic!("expected RetryAfter, got {other:?}"),
    }

    let hurried = SubmitOptions {
        priority: Priority::Interactive,
        deadline: Some(Duration::from_millis(10)),
        ..SubmitOptions::default()
    };
    match svc.submit_opts("r", "s", &JoinPredicate::intersects(), &hurried) {
        Err(ServiceError::Rejected(Rejected::DeadlineExceeded { .. })) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    drop(hold);
    let resp = svc.submit("r", "s").unwrap();
    let sec = svc.service_section();
    assert_eq!((sec.shed_retry_after, sec.shed_deadline), (1, 1));
    assert_eq!(sec.completed, 1);
    assert!(!resp.result.is_empty());
}

/// The starvation regression at the service level, at every concurrency
/// level: a large join queued behind a pool sized exactly for it must
/// complete while streams of small joins keep arriving. Under the old
/// barging fast path this spins forever; the ticket queue bounds it.
#[test]
fn queued_large_join_survives_streams_of_small_joins_at_every_concurrency() {
    for concurrency in [1usize, 2, 4] {
        let mut db = Database::new(1024);
        db.create_table("big_r", &workload(2_500, 11, true))
            .unwrap();
        db.create_table("big_s", &workload(2_500, 12, false))
            .unwrap();
        db.create_table("small_r", &workload(250, 13, true))
            .unwrap();
        db.create_table("small_s", &workload(250, 14, false))
            .unwrap();
        let (big_pages, buffer) = {
            let r = db.table_stats("big_r").unwrap().pages;
            let s = db.table_stats("big_s").unwrap().pages;
            (r + s, 16u64)
        };
        // The big join fits only in an otherwise-empty pool.
        let mut cfg =
            ServiceConfig::new(JoinConfig::with_buffer(buffer).seed(7), big_pages + buffer);
        cfg.threads_per_query = 1;
        cfg.max_queue = 64;
        let svc = JoinService::new(db, cfg);

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..concurrency {
                scope.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        svc.submit("small_r", "small_s").expect("small join");
                    }
                });
            }
            let resp = svc
                .submit("big_r", "big_s")
                .expect("large join must not starve");
            done.store(true, Ordering::Relaxed);
            assert!(
                !resp.result.is_empty(),
                "concurrency {concurrency}: large join returned nothing"
            );
        });
    }
}

#[test]
fn repeated_workload_hits_the_cache_with_identical_output() {
    let svc = service_with(&[("r", 2_500, true), ("s", 2_500, false)]);
    let first = svc.submit("r", "s").unwrap();
    assert_eq!(first.plan, PlanOutcome::Miss);
    let want = sorted_encoding(&first.result);
    for round in 0..4 {
        let resp = svc.submit("r", "s").unwrap();
        assert_eq!(resp.plan, PlanOutcome::CacheHit, "round {round}");
        assert_eq!(sorted_encoding(&resp.result), want, "round {round}");
    }
    let sec = svc.service_section();
    assert_eq!(
        (sec.cache_hits, sec.cache_misses, sec.cache_invalidations),
        (4, 1, 0)
    );
    assert!(
        sec.cache_hits > 0,
        "repeated workload must report a positive hit ratio"
    );
}

#[test]
fn version_bump_with_unchanged_stats_stays_a_hit() {
    let svc = service_with(&[("r", 2_000, true), ("s", 2_000, false)]);
    assert_eq!(svc.submit("r", "s").unwrap().plan, PlanOutcome::Miss);
    // An empty append rewrites the table and bumps its catalog version —
    // the fingerprint's fast path (version equality) no longer applies,
    // so this exercises the drift-tolerance comparison with zero drift.
    svc.append("r", &[]).unwrap();
    assert_eq!(svc.submit("r", "s").unwrap().plan, PlanOutcome::CacheHit);
    let sec = svc.service_section();
    assert_eq!(
        (sec.cache_hits, sec.cache_misses, sec.cache_invalidations),
        (1, 1, 0)
    );
}

#[test]
fn drift_past_tolerance_forces_a_replan() {
    let svc = service_with(&[("r", 2_000, true), ("s", 2_000, false)]);
    assert_eq!(svc.submit("r", "s").unwrap().plan, PlanOutcome::Miss);
    assert_eq!(svc.submit("r", "s").unwrap().plan, PlanOutcome::CacheHit);

    // Double the outer relation: cardinality drift far beyond any
    // errorSize-derived tolerance, so the cached plan must be dropped.
    let extra = workload(2_000, 0xD01F, true).into_tuples();
    svc.append("r", &extra).unwrap();
    let resp = svc.submit("r", "s").unwrap();
    assert_eq!(resp.plan, PlanOutcome::Invalidated);

    // The replanned entry is cached in turn.
    assert_eq!(svc.submit("r", "s").unwrap().plan, PlanOutcome::CacheHit);

    let sec = svc.service_section();
    assert_eq!(
        (sec.cache_hits, sec.cache_misses, sec.cache_invalidations),
        (2, 2, 1)
    );
    assert_eq!(sec.requests, 4);
    assert_eq!(sec.completed, 4);

    // And the post-drift result matches the post-drift oracle.
    let want = {
        let db = svc.database().read().unwrap();
        let (r, s) = (db.scan("r").unwrap(), db.scan("s").unwrap());
        sorted_encoding(&natural_join(&r, &s).unwrap())
    };
    assert_eq!(sorted_encoding(&resp.result), want);
}
